"""Shared fixtures: small seeded databases and query generators.

Also registers the hypothesis profiles: the crash-injection/durability
property tests (tests/storage/test_wal.py, tests/gausstree/
test_persist_write.py) deliberately do not pin ``max_examples``, so the
example budget is the active profile's — ``dev`` (20 examples, fast
local feedback) by default, ``default`` (hypothesis's stock 100) for
CI's main suite via ``REPRO_HYPOTHESIS_PROFILE=default``, and ``ci``
(150) when the dedicated durability step passes
``--hypothesis-profile=ci``. Tests that pin their own ``@settings`` are
unaffected by profiles.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.core.database import PFVDatabase
from repro.core.pfv import PFV

settings.register_profile("dev", max_examples=20, deadline=None)
settings.register_profile("default", deadline=None)
settings.register_profile("ci", max_examples=150, deadline=None)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "dev"))


def pytest_configure(config):
    # The legacy mliq/tiq entry points are deliberately kept working (and
    # deliberately still exercised by the pre-engine test files) through
    # the 1.x deprecation window; silence exactly their warning so real
    # deprecations stay visible. The dedicated shim tests use
    # pytest.warns, which is unaffected by ignore filters.
    config.addinivalue_line(
        "filterwarnings",
        r"ignore:.* is deprecated; use repro\.connect:DeprecationWarning",
    )


def make_random_db(
    n: int = 60,
    d: int = 3,
    seed: int = 0,
    sigma_low: float = 0.05,
    sigma_high: float = 0.4,
) -> PFVDatabase:
    """A small uniform pfv database with integer keys."""
    rng = np.random.default_rng(seed)
    vectors = [
        PFV(
            rng.uniform(0.0, 1.0, d),
            rng.uniform(sigma_low, sigma_high, d),
            key=i,
        )
        for i in range(n)
    ]
    return PFVDatabase(vectors)


def make_random_query(d: int = 3, seed: int = 1) -> PFV:
    rng = np.random.default_rng(seed)
    return PFV(rng.uniform(0.0, 1.0, d), rng.uniform(0.05, 0.4, d))


@pytest.fixture
def small_db() -> PFVDatabase:
    return make_random_db()


@pytest.fixture
def query_pfv() -> PFV:
    return make_random_query()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
