"""Shard assignment: deterministic placement and manifest round trips.

The hash policy must place the same object on the same shard in *every*
process — the manifest written by one machine is read by serving
processes and pool workers, so ``PYTHONHASHSEED`` randomisation (or any
other per-process state) must never leak into placement. That property
is tested for real: a subprocess with a different hash seed must compute
identical assignments.
"""

import json
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.cluster import (
    ClusterError,
    build_shards,
    load_manifest,
    partition_database,
    shard_of,
    stable_shard_hash,
)
from repro.core.database import PFVDatabase
from repro.core.pfv import PFV
from repro.engine import MLIQ, connect

from tests.conftest import make_random_db, make_random_query


def _mixed_key_db(n: int = 40) -> PFVDatabase:
    """Keys of several shapes (ints, strings, tuples, None) so stable
    hashing is exercised beyond toy integer keys."""
    rng = np.random.default_rng(11)
    keys = []
    for i in range(n):
        keys.append(
            [i, f"obj-{i}", ("group", i % 5, i), None][i % 4]
        )
    return PFVDatabase(
        [
            PFV(rng.uniform(0, 1, 3), rng.uniform(0.05, 0.4, 3), key=k)
            for k in keys
        ]
    )


@pytest.mark.parametrize("policy", ["hash", "round-robin"])
@pytest.mark.parametrize("n_shards", [1, 2, 3, 7])
def test_every_object_lands_in_exactly_one_shard(policy, n_shards):
    db = _mixed_key_db()
    parts = partition_database(db, n_shards, policy)
    assert len(parts) == n_shards
    assert sum(len(p) for p in parts) == len(db)
    # Disjoint and complete: every stored pfv appears exactly once.
    seen = [v for part in parts for v in part]
    assert sorted(map(hash, seen)) == sorted(map(hash, db))
    # And each lands where shard_of says it does.
    for position, v in enumerate(db):
        expected = shard_of(v, position, n_shards, policy)
        assert v in list(parts[expected])


def test_round_robin_is_balanced():
    db = make_random_db(n=30)
    parts = partition_database(db, 4, "round-robin")
    assert sorted(len(p) for p in parts) == [7, 7, 8, 8]


def test_unknown_policy_rejected():
    db = make_random_db(n=3)
    with pytest.raises(ValueError, match="unknown partition policy"):
        partition_database(db, 2, "alphabetical")


def test_hash_policy_is_deterministic_across_processes():
    """Same assignments under a different PYTHONHASHSEED: placement can
    never depend on Python's randomised ``hash()``."""
    db = _mixed_key_db()
    local = [shard_of(v, i, 5, "hash") for i, v in enumerate(db)]
    hashes = [stable_shard_hash(v) for v in db]

    program = textwrap.dedent(
        """
        import json, sys
        import numpy as np
        from repro.cluster import shard_of, stable_shard_hash
        from repro.core.database import PFVDatabase
        from repro.core.pfv import PFV

        rng = np.random.default_rng(11)
        keys = []
        for i in range(40):
            keys.append([i, f"obj-{i}", ("group", i % 5, i), None][i % 4])
        db = PFVDatabase(
            PFV(rng.uniform(0, 1, 3), rng.uniform(0.05, 0.4, 3), key=k)
            for k in keys
        )
        print(json.dumps({
            "shards": [shard_of(v, i, 5, "hash") for i, v in enumerate(db)],
            "hashes": [stable_shard_hash(v) for v in db],
        }))
        """
    )
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "31337"  # different randomisation than ours
    src_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
    )
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", program],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert out.returncode == 0, out.stderr
    remote = json.loads(out.stdout)
    assert remote["shards"] == local
    assert remote["hashes"] == hashes


def test_anonymous_vectors_place_deterministically():
    v = PFV([0.25, 0.5], [0.1, 0.2], key=None)
    again = PFV([0.25, 0.5], [0.1, 0.2], key=None)
    assert stable_shard_hash(v) == stable_shard_hash(again)


def test_manifest_round_trips_through_shard_build(tmp_path):
    db = make_random_db(n=45, seed=3)
    manifest = build_shards(db, 3, tmp_path / "idx", policy="hash")
    assert manifest.source_path == str(tmp_path / "idx.shards.json")

    loaded = load_manifest(manifest.source_path)
    assert loaded.policy == "hash"
    assert loaded.n_shards == 3
    assert loaded.total_objects == len(db)
    assert [s.objects for s in loaded.shards] == [
        s.objects for s in manifest.shards
    ]
    for path, info in zip(loaded.shard_paths(), loaded.shards):
        if info.objects:
            assert path is not None and os.path.exists(path)

    # The round trip serves queries: connect(manifest) == seqscan answers.
    q = make_random_query(seed=9)
    with connect(db, backend="seqscan") as ref:
        expected = {
            m.key: m.probability for m in ref.execute(MLIQ(q, 6)).matches
        }
    with connect(manifest.source_path, backend="sharded") as session:
        assert len(session) == len(db)
        got = {
            m.key: m.probability for m in session.execute(MLIQ(q, 6)).matches
        }
    assert set(got) == set(expected)
    for key, p in got.items():
        assert p == pytest.approx(expected[key], abs=1e-9)


def test_more_shards_than_objects_leaves_empty_shards(tmp_path):
    db = make_random_db(n=2, seed=4)
    manifest = build_shards(db, 5, tmp_path / "tiny", policy="round-robin")
    empties = [s for s in manifest.shards if s.objects == 0]
    assert len(empties) == 3
    assert all(s.path is None for s in empties)
    with connect(manifest.source_path, backend="sharded") as session:
        assert len(session) == 2
        rs = session.execute(MLIQ(make_random_query(seed=5), 10))
        assert len(rs.matches) == 2


def test_build_shards_accepts_prefix_with_manifest_suffix(tmp_path):
    db = make_random_db(n=10)
    manifest = build_shards(db, 2, tmp_path / "x.shards.json")
    assert manifest.source_path == str(tmp_path / "x.shards.json")


def test_load_manifest_rejects_garbage(tmp_path):
    missing = tmp_path / "nope.shards.json"
    with pytest.raises(ClusterError, match="not found"):
        load_manifest(missing)

    bad_json = tmp_path / "bad.shards.json"
    bad_json.write_text("{not json")
    with pytest.raises(ClusterError, match="cannot parse"):
        load_manifest(bad_json)

    wrong_format = tmp_path / "fmt.shards.json"
    wrong_format.write_text(json.dumps({"format": "parquet"}))
    with pytest.raises(ClusterError, match="format marker"):
        load_manifest(wrong_format)

    mismatched = tmp_path / "mismatch.shards.json"
    mismatched.write_text(
        json.dumps(
            {
                "format": "gausstree-shards",
                "version": 1,
                "policy": "hash",
                "sigma_rule": "convolution",
                "n_shards": 3,
                "shards": [{"path": "a.gauss", "objects": 1}],
            }
        )
    )
    with pytest.raises(ClusterError, match="n_shards=3 but"):
        load_manifest(mismatched)
