"""ShardedBackend: global merge correctness, fan-out stats, hardening.

The parity property in ``tests/engine/test_parity.py`` already proves
sharded answers equal the single-backend ones on random workloads; this
file pins the *mechanisms* — the cross-shard Bayes denominator (a shard
with no threshold answers still shifts everyone's posterior), the
per-shard stats/provenance accounting, the fan-out cost pricing — and
the failure modes: a manifest pointing at missing shard files, a pool
worker that raises, and a worker process that dies mid-batch must all
surface as a prompt :class:`ClusterError`, never a hang.
"""

import math
import os

import pytest

from repro.cluster import ClusterError, ProcessPool, SerialPool, make_pool
from repro.cluster.partition import build_shards
from repro.core.database import PFVDatabase
from repro.core.pfv import PFV
from repro.engine import MLIQ, TIQ, RankQuery, CapabilityError, connect

from tests.conftest import make_random_db, make_random_query


# ---------------------------------------------------------------------------
# Merge correctness mechanisms
# ---------------------------------------------------------------------------


def test_tiq_counts_mass_of_shards_with_empty_answer_sets():
    """The global Bayes denominator spans shards that return *nothing*.

    Two identical-density objects answer a centred query; round-robin
    over two shards isolates them, so each shard alone would report its
    object at local posterior ~1.0 — naive merging would answer both at
    tau=0.9. Correct renormalisation halves the posteriors to ~0.5 and
    rejects both.
    """
    db = PFVDatabase(
        [
            PFV([0.0], [0.5], key="left"),
            PFV([1.0], [0.5], key="right"),
        ]
    )
    q = PFV([0.5], [0.5])  # equidistant: posteriors are exactly 1/2
    spec = TIQ(q, tau=0.9)
    with connect(db, backend="sharded", shards=2, policy="round-robin") as s:
        rs = s.execute(spec)
        assert rs.matches == []
        # At tau=0.4 both come back, each with the *global* posterior.
        both = s.execute(TIQ(q, tau=0.4)).matches
    assert sorted(m.key for m in both) == ["left", "right"]
    for m in both:
        assert m.probability == pytest.approx(0.5, abs=1e-12)


def test_mliq_posteriors_renormalise_across_shards():
    db = make_random_db(n=40, seed=8)
    q = make_random_query(seed=9)
    with connect(db, backend="tree") as ref:
        expected = {
            m.key: m.probability for m in ref.execute(MLIQ(q, 10)).matches
        }
    with connect(db, backend="sharded", shards=3) as s:
        got = {m.key: m.probability for m in s.execute(MLIQ(q, 10)).matches}
    assert set(got) == set(expected)
    for key, p in got.items():
        assert p == pytest.approx(expected[key], abs=1e-9)
    # Posterior mass over ALL stored objects sums to 1, so a k=n answer
    # carries the full mass — only true if Z spans every shard.
    with connect(db, backend="sharded", shards=3) as s:
        full = s.execute(MLIQ(q, len(db))).matches
    assert sum(m.probability for m in full) == pytest.approx(1.0, abs=1e-9)


def test_rank_min_mass_cut_applies_to_global_posteriors():
    db = make_random_db(n=30, seed=12)
    q = make_random_query(seed=13)
    with connect(db, backend="tree") as ref:
        expected = ref.execute(RankQuery(q, 20, min_mass=0.95)).matches
    with connect(db, backend="sharded", shards=3) as s:
        got = s.execute(RankQuery(q, 20, min_mass=0.95)).matches
    assert [m.key for m in got] == [m.key for m in expected]


def test_edge_cases_match_engine_semantics():
    db = make_random_db(n=5, seed=2)
    q = make_random_query(seed=3)
    with connect(db, backend="sharded", shards=3) as s:
        assert s.execute(MLIQ(q, 0)).matches == []
        assert len(s.execute(MLIQ(q, 99)).matches) == 5
    empty = PFVDatabase()
    with connect(empty, backend="sharded", shards=2) as s:
        assert len(s) == 0
        assert s.execute(MLIQ(q, 3)).matches == []
        assert s.execute(TIQ(q, 0.5)).matches == []


def test_merged_stats_sum_shards_and_provenance_breaks_them_down():
    db = make_random_db(n=60, seed=5)
    q = make_random_query(seed=6)
    with connect(db, backend="sharded", shards=3) as s:
        rs = s.execute_many([MLIQ(q, 4), TIQ(q, 0.2)])
    # One provenance entry per active shard per executed kind-batch.
    assert len(rs.provenance) == 6
    assert all(name.startswith("shard-") for name, _ in rs.provenance)
    assert rs.stats.pages_accessed == sum(
        st.pages_accessed for _, st in rs.provenance
    )
    assert rs.stats.objects_refined == sum(
        st.objects_refined for _, st in rs.provenance
    )
    # Single-backend sessions attach no provenance.
    with connect(db, backend="tree") as plain:
        assert plain.execute(MLIQ(q, 2)).provenance == ()


def test_failed_batch_does_not_leak_provenance_into_the_next():
    """A kind-group that fails after an earlier group succeeded must
    discard the partial per-shard breakdown (regression: stale entries
    double-counted shards in the next ResultSet)."""
    db = make_random_db(n=20, seed=61)
    q = make_random_query(seed=62)
    with connect(db, backend="sharded", shards=2) as s:
        backend = s._backend
        real_run_tiq = backend.run_tiq

        def failing_run_tiq(specs):
            raise ClusterError("injected tiq failure")

        backend.run_tiq = failing_run_tiq
        with pytest.raises(ClusterError, match="injected"):
            # mliq group executes (and records provenance) first.
            s.execute_many([MLIQ(q, 2), TIQ(q, 0.2)])
        backend.run_tiq = real_run_tiq
        rs = s.execute(MLIQ(q, 2))
    # Exactly one entry per shard for this batch, none from the failure.
    assert len(rs.provenance) == 2


def test_manifest_source_rejects_repartition_options(tmp_path):
    db = make_random_db(n=12, seed=63)
    manifest = build_shards(db, 2, tmp_path / "fixed")
    with pytest.raises(TypeError, match="conflict with a manifest"):
        connect(manifest.source_path, backend="sharded", shards=4)
    with pytest.raises(TypeError, match="conflict with a manifest"):
        connect(
            manifest.source_path, backend="sharded", policy="round-robin"
        )


def test_sharded_declares_capabilities_and_gates_writes():
    db = make_random_db(n=12)
    # Read-only (the default) still refuses writes...
    with connect(db, backend="sharded", shards=2) as s:
        assert {"mliq", "tiq", "batch", "exact"} <= s.capabilities
        assert not s.writable
        with pytest.raises(CapabilityError):
            s.insert(PFV([0.1, 0.1, 0.1], [0.1, 0.1, 0.1], key="new"))
    # ...while writable=True arms the placement-routed write surface.
    with connect(db, backend="sharded", shards=2, writable=True) as s:
        assert "writable" in s.capabilities
        s.insert(PFV([0.1, 0.1, 0.1], [0.1, 0.1, 0.1], key="new"))
        assert len(s) == 13


def test_sharded_over_xtree_inner_is_not_exact():
    db = make_random_db(n=25)
    with connect(db, backend="sharded", shards=2, inner="xtree") as s:
        assert "exact" not in s.capabilities


def test_parallel_pool_estimate_prices_max_not_sum(tmp_path):
    db = make_random_db(n=80, seed=21)
    manifest = build_shards(db, 4, tmp_path / "est")
    specs = [MLIQ(make_random_query(seed=22), 5)] * 8
    with connect(manifest.source_path, backend="sharded") as serial:
        serial_plan = serial.explain(specs)
    with connect(
        manifest.source_path, backend="sharded", pool="process", workers=2
    ) as parallel:
        parallel_plan = parallel.explain(specs)
    assert serial_plan.estimated_pages == parallel_plan.estimated_pages
    assert (
        parallel_plan.estimated_io_seconds
        < serial_plan.estimated_io_seconds
    )
    assert any("fan-out" in step for step in serial_plan.lowering)


# ---------------------------------------------------------------------------
# Option validation
# ---------------------------------------------------------------------------


def test_in_memory_source_requires_shard_count():
    db = make_random_db(n=6)
    with pytest.raises(TypeError, match="shards=N"):
        connect(db, backend="sharded")


def test_unknown_options_rejected():
    db = make_random_db(n=6)
    with pytest.raises(TypeError, match="replicas"):
        connect(db, backend="sharded", shards=2, replicas=3)


def test_disk_inner_requires_manifest():
    db = make_random_db(n=6)
    with pytest.raises(TypeError, match="shard-build"):
        connect(db, backend="sharded", shards=2, inner="disk")


# ---------------------------------------------------------------------------
# Hardening: broken manifests and dying workers
# ---------------------------------------------------------------------------


def test_manifest_with_missing_shard_file_fails_loudly(tmp_path):
    db = make_random_db(n=30, seed=7)
    manifest = build_shards(db, 3, tmp_path / "broken")
    victim = [p for p in manifest.shard_paths() if p is not None][1]
    os.remove(victim)
    with pytest.raises(ClusterError, match="missing index file"):
        connect(manifest.source_path, backend="sharded")
    # The error names the exact file so operators can fix it.
    with pytest.raises(ClusterError, match=os.path.basename(victim)):
        connect(manifest.source_path, backend="sharded")


def test_shard_unopenable_at_query_time_fails_loudly(tmp_path):
    """A shard that passes the existence check but cannot be *opened*
    (truncated/corrupt file) surfaces as ClusterError, not a hang."""
    db = make_random_db(n=30, seed=17)
    manifest = build_shards(db, 2, tmp_path / "corrupt")
    victim = [p for p in manifest.shard_paths() if p is not None][0]
    with open(victim, "wb") as f:
        f.write(b"\x00" * 64)
    session = connect(manifest.source_path, backend="sharded")
    with pytest.raises(ClusterError, match="cannot open shard"):
        session.execute(MLIQ(make_random_query(), 3))
    session.close()


# Pool doubles must live at module level so fork workers resolve them by
# reference.
class _Boom:
    def __call__(self, shard_id):
        raise RuntimeError("shard backend exploded")


def _echo_runner(session, payload):
    return (session, payload)


class _IdentityOpener:
    def __call__(self, shard_id):
        return f"session-{shard_id}"


def _crashing_runner(session, payload):
    if payload == "die":
        os._exit(17)  # simulated worker crash (segfault/OOM-kill stand-in)
    return (session, payload)


def test_serial_pool_wraps_worker_exceptions():
    pool = make_pool("serial", _Boom(), _echo_runner, n_shards=2)
    with pytest.raises(ClusterError, match="cannot open shard 0"):
        pool.run([(0, "payload")])
    pool.close()
    with pytest.raises(ClusterError, match="closed"):
        pool.run([(0, "payload")])


@pytest.mark.skipif(
    os.name != "posix", reason="fork start method required"
)
def test_process_pool_surfaces_raising_worker():
    pool = ProcessPool(_Boom(), _echo_runner, workers=1)
    try:
        with pytest.raises(ClusterError, match="shard backend exploded"):
            pool.run([(0, "payload")])
    finally:
        pool.close()


@pytest.mark.skipif(
    os.name != "posix", reason="fork start method required"
)
def test_process_pool_surfaces_dead_worker_and_recovers():
    pool = ProcessPool(_IdentityOpener(), _crashing_runner, workers=1)
    try:
        with pytest.raises(ClusterError, match="worker process died"):
            pool.run([(0, "die")])
        # The broken executor was dropped: the next batch gets a fresh
        # pool and works.
        assert pool.run([(1, "ok")]) == [("session-1", "ok")]
    finally:
        pool.close()


def test_make_pool_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown pool kind"):
        make_pool("threads", _IdentityOpener(), _echo_runner, n_shards=1)


@pytest.mark.skipif(
    os.name != "posix", reason="fork start method required"
)
def test_process_pool_parity_with_serial(tmp_path):
    db = make_random_db(n=50, seed=31)
    manifest = build_shards(db, 3, tmp_path / "pp")
    q = make_random_query(seed=32)
    specs = [MLIQ(q, 5), TIQ(q, 0.1), RankQuery(q, 8, min_mass=0.9)]
    with connect(manifest.source_path, backend="sharded") as serial:
        expected = [list(m) for m in serial.execute_many(specs)]
    with connect(
        manifest.source_path, backend="sharded", pool="process", workers=2
    ) as parallel:
        got = [list(m) for m in parallel.execute_many(specs)]
        # Warm workers answer a second batch identically.
        again = [list(m) for m in parallel.execute_many(specs)]
    for exp, g1, g2 in zip(expected, got, again):
        assert [m.key for m in exp] == [m.key for m in g1]
        assert [m.key for m in exp] == [m.key for m in g2]
        for a, b in zip(exp, g1):
            assert b.probability == pytest.approx(
                a.probability, abs=1e-12
            )


def test_serial_pool_shares_sessions_with_metadata():
    db = make_random_db(n=20, seed=41)
    session = connect(db, backend="sharded", shards=2)
    backend = session._backend
    assert isinstance(backend._pool, SerialPool)
    session.execute(MLIQ(make_random_query(seed=42), 3))
    materialised = session.database()
    assert len(materialised) == len(db)
    assert math.isclose(
        sum(1 for _ in materialised), len(db)
    )
    session.close()
    with pytest.raises(RuntimeError, match="closed"):
        session.execute(MLIQ(make_random_query(), 1))


# ---------------------------------------------------------------------------
# The write router (writable sharded sessions)
# ---------------------------------------------------------------------------


def _count_map(manifest_path):
    from repro.cluster import load_manifest

    m = load_manifest(manifest_path)
    return [s.objects for s in m.shards], m.effective_placement_epoch


def test_hash_routed_insert_lands_on_its_owning_shard(tmp_path):
    from repro.cluster import load_manifest, shard_of

    db = make_random_db(n=24, seed=60)
    manifest = build_shards(db, 3, str(tmp_path / "w"), policy="hash")
    new = PFV([0.4, 0.4, 0.4], [0.1, 0.1, 0.1], key="routed")
    owner = shard_of(new, 0, 3, "hash")
    before = [s.objects for s in manifest.shards]
    with connect(manifest.source_path, backend="sharded", writable=True) as s:
        s.insert(new)
        after, _ = _count_map(manifest.source_path)
        assert after[owner] == before[owner] + 1
        assert sum(after) == sum(before) + 1
        # The hash names the shard for the delete too: one probe.
        assert s.delete(new)
        assert not s.delete(new)
    final, _ = _count_map(manifest.source_path)
    assert final == before


def test_round_robin_routing_continues_from_the_recorded_epoch(tmp_path):
    db = make_random_db(n=10, seed=61)
    manifest = build_shards(
        db, 3, str(tmp_path / "rr"), policy="round-robin"
    )
    assert manifest.effective_placement_epoch == 10
    fresh = [
        PFV([0.2 * i, 0.3, 0.4], [0.1, 0.1, 0.1], key=("rr", i))
        for i in range(6)
    ]
    with connect(manifest.source_path, backend="sharded", writable=True) as s:
        s.insert_many(fresh)  # positions 10..15 -> shards 1,2,0,1,2,0
    counts, epoch = _count_map(manifest.source_path)
    assert epoch == 16
    # 10 objects round-robined over 3 shards gave [4, 3, 3]; positions
    # 10..15 add exactly two per shard.
    assert counts == [6, 5, 5]
    # A second writable session keeps counting where the first stopped.
    with connect(manifest.source_path, backend="sharded", writable=True) as s:
        s.insert(PFV([0.5, 0.5, 0.5], [0.1, 0.1, 0.1], key="pos16"))
    counts, epoch = _count_map(manifest.source_path)
    assert epoch == 17
    assert counts == [6, 6, 5]  # position 16 -> shard 1


def test_round_robin_delete_probes_until_found(tmp_path):
    db = make_random_db(n=12, seed=62)
    manifest = build_shards(
        db, 3, str(tmp_path / "rd"), policy="round-robin"
    )
    victim = list(db)[7]
    with connect(manifest.source_path, backend="sharded", writable=True) as s:
        assert s.delete(victim)
        assert not s.delete(victim)
        assert len(s) == 11


def _shard_wal_sizes(manifest):
    """Per-shard WAL file size (None = no WAL file on disk)."""
    base = os.path.dirname(os.path.abspath(manifest.source_path))
    sizes = {}
    for info in manifest.shards:
        if info.path is None:
            continue
        wal = os.path.join(base, info.path) + ".wal"
        sizes[wal] = (
            os.path.getsize(wal) if os.path.exists(wal) else None
        )
    return sizes


@pytest.mark.parametrize("policy", ["hash", "round-robin"])
def test_delete_of_absent_key_is_a_clean_not_found(tmp_path, policy):
    """Regression: deleting a key present on *no* shard must answer
    ``False`` — not raise :class:`ClusterError` — and commit nothing:
    shard WALs untouched, manifest counts and epoch unchanged."""
    db = make_random_db(n=12, seed=66)
    manifest = build_shards(
        db, 3, str(tmp_path / f"abs-{policy}"), policy=policy
    )
    ghost = PFV([0.9, 0.8, 0.7], [0.1, 0.1, 0.1], key="never-inserted")
    before_counts, before_epoch = _count_map(manifest.source_path)
    with connect(manifest.source_path, backend="sharded", writable=True) as s:
        assert s.delete(ghost) is False
        assert len(s) == 12
        # The probes opened writable shard sessions (which materialize
        # empty WAL headers); the *miss itself* must append nothing —
        # a second miss leaves every WAL at exactly the same size.
        baseline_wals = _shard_wal_sizes(manifest)
        assert s.delete(ghost) is False
        assert _shard_wal_sizes(manifest) == baseline_wals
        # ... and no manifest refresh happened for either miss.
        assert _count_map(manifest.source_path) == (
            before_counts,
            before_epoch,
        )
        # The session stays fully usable after the miss.
        assert s.delete(list(db)[3]) is True
        assert len(s) == 11


def test_delete_skips_pathless_shards_instead_of_raising():
    """Regression: a shard marked active but with no materialized source
    (the state a stale count for a never-written shard leaves behind)
    must not fail an absent-key delete with ClusterError — the probe
    skips it and answers a clean not-found. ``connect`` validates
    manifests up front, so the state is doctored in-session, exactly
    where the probe loop would otherwise route through
    ``_writable_session`` and raise."""
    db = make_random_db(n=8, seed=67)
    with connect(
        db,
        backend="sharded",
        shards=3,
        inner="tree",
        policy="round-robin",
        writable=True,
    ) as s:
        backend = s._backend
        assert backend._counts[2] > 0  # round-robin fills every shard
        backend._sources[2] = None  # stale manifest: count, no file
        ghost = PFV([0.9, 0.8, 0.7], [0.1, 0.1, 0.1], key="never-inserted")
        assert s.delete(ghost) is False


def test_writable_writes_survive_crashless_close_and_reopen(tmp_path):
    db = make_random_db(n=18, seed=63)
    manifest = build_shards(db, 2, str(tmp_path / "dur"))
    fresh = [
        PFV([0.3, 0.3, 0.3 + 0.01 * i], [0.1, 0.1, 0.1], key=("d", i))
        for i in range(5)
    ]
    with connect(manifest.source_path, backend="sharded", writable=True) as s:
        s.insert_many(fresh)
        live = {m.key for m in s.execute(MLIQ(fresh[0], 23)).matches}
        assert {("d", i) for i in range(5)} <= live
    # Close checkpointed every shard; a read-only reopen serves them.
    with connect(manifest.source_path, backend="sharded") as s:
        assert len(s) == 23
        again = {m.key for m in s.execute(MLIQ(fresh[0], 23)).matches}
    assert again == live


def test_insert_into_hash_empty_shard_activates_it():
    # 2 objects over 3 shards leaves at least one shard empty; inserts
    # that the hash owns to an empty in-memory shard must activate it.
    db = PFVDatabase(
        [PFV([0.1 * i, 0.2], [0.1, 0.1], key=i) for i in range(2)]
    )
    with connect(
        db, backend="sharded", shards=3, inner="tree", writable=True
    ) as s:
        for i in range(12):
            s.insert(PFV([0.05 * i, 0.4], [0.1, 0.1], key=("fill", i)))
        assert len(s) == 14
        rs = s.execute(MLIQ(PFV([0.2, 0.3], [0.1, 0.1]), 14))
        assert len(rs.matches) == 14


def test_writable_process_pool_is_refused(tmp_path):
    db = make_random_db(n=10, seed=64)
    manifest = build_shards(db, 2, str(tmp_path / "pp"))
    with pytest.raises(TypeError, match="serial"):
        connect(
            manifest.source_path,
            backend="sharded",
            pool="process",
            writable=True,
        )


def test_writable_seqscan_inner_fails_loudly():
    db = make_random_db(n=10, seed=65)
    with connect(
        db, backend="sharded", shards=2, inner="seqscan", writable=True
    ) as s:
        with pytest.raises(ClusterError, match="not .*writable|writable"):
            s.insert(PFV([0.1, 0.1, 0.1], [0.1, 0.1, 0.1], key="x"))


def test_writable_open_trusts_shard_indexes_over_stale_manifest(tmp_path):
    """A crashed writer leaves manifest counts stale; the writable open
    must re-count from the recovered shard indexes."""
    import json

    db = make_random_db(n=12, seed=66)
    manifest = build_shards(db, 2, str(tmp_path / "stale"))
    with connect(manifest.source_path, backend="sharded", writable=True) as s:
        s.insert_many(
            [
                PFV([0.3, 0.3, 0.3], [0.1, 0.1, 0.1], key=("s", i))
                for i in range(4)
            ]
        )
    # Sabotage: rewrite the manifest with the pre-insert counts.
    with open(manifest.source_path) as f:
        doc = json.load(f)
    doc["shards"] = [
        {"path": s["path"], "objects": max(0, s["objects"] - 2)}
        for s in doc["shards"]
    ]
    with open(manifest.source_path, "w") as f:
        json.dump(doc, f)
    with connect(manifest.source_path, backend="sharded", writable=True) as s:
        assert len(s) == 16  # the indexes know better
    _, epoch = _count_map(manifest.source_path)
    assert epoch >= 16


def test_empty_shard_gets_index_lazily_on_first_write(tmp_path):
    """A shard that was empty at build time (``path=None`` in the
    manifest) materializes its index file on the first routed write —
    named as ``build_shards`` would have named it — instead of
    rejecting the batch."""
    import json

    db = PFVDatabase(
        [PFV([0.2] * 3, [0.1] * 3, key=0), PFV([0.8] * 3, [0.1] * 3, key=1)]
    )
    manifest = build_shards(
        db, 4, str(tmp_path / "lazy"), policy="round-robin"
    )
    assert [s.path for s in manifest.shards].count(None) == 2
    with connect(manifest.source_path, backend="sharded", writable=True) as s:
        s.insert_many(
            [PFV([0.5] * 3, [0.1] * 3, key=k) for k in range(2, 10)]
        )
        assert len(s) == 10
        rs = s.execute(MLIQ(PFV([0.5] * 3, [0.1] * 3), 10))
        assert len(rs.matches) == 10
    with open(manifest.source_path) as f:
        doc = json.load(f)
    paths = [sh["path"] for sh in doc["shards"]]
    assert None not in paths
    assert paths[2] == "lazy.shard-02.gauss"
    for path in paths:
        assert (tmp_path / path).exists()
    # Round-robin over 4 shards: 10 sequential positions -> 3/3/2/2.
    assert [sh["objects"] for sh in doc["shards"]] == [3, 3, 2, 2]
    # The deployment reopens like any fully-populated one.
    with connect(manifest.source_path, backend="sharded") as s:
        assert len(s) == 10
