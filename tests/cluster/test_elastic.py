"""Elasticity: WAL shipping, replica failover and online re-sharding.

The PR-7 contract, pinned end to end:

* **Shipping** — a replica is always a durable *committed prefix* of its
  primary: :func:`~repro.storage.ship.create_replica` clones, an
  incremental :meth:`~repro.storage.ship.WALShipper.ship` forwards only
  newly committed WAL bytes (applied through the ordinary recovery
  path), and a primary checkpoint the shipper was not told about forces
  a full resync instead of corrupting the replica.
* **Failover** — a pool worker killed mid-batch costs a retry on the
  shard's next replica, not the batch: a 64-query MLIQ batch answered
  under a kill is *bit-identical* to the fault-free run.
* **Re-sharding** — ``reshard`` rebuilds the deployment at a new shard
  count beside the old generation and cuts over via one atomic manifest
  replace; queries running throughout never see a wrong or partial
  answer.
* **The property** — a random interleaved write+query workload with
  injected worker losses and replica failovers answers within 1e-9 of a
  single in-memory tree over the same objects.
"""

import os
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterError, load_manifest, reshard
from repro.cluster.backend import ShardedBackend, _run_shard_payload
from repro.cluster.partition import build_shards
from repro.cluster.pool import default_workers
from repro.core.database import PFVDatabase
from repro.core.pfv import PFV
from repro.core.queries import MLIQuery
from repro.engine import MLIQ, ConsensusTopK, ExpectedRank, connect
from repro.engine.session import Session
from repro.gausstree.tree import GaussTree
from repro.storage.fault import WorkerKillSwitch, killing_runner
from repro.storage.ship import WALShipper, create_replica, replica_path
from repro.storage.wal import WAL_MAGIC, WriteAheadLog

from tests.conftest import make_random_db, make_random_query


# ---------------------------------------------------------------------------
# default_workers: the "never below 2" contract
# ---------------------------------------------------------------------------


def test_default_workers_never_drops_below_two(monkeypatch):
    """A single-shard deployment still gets 2 workers (a dying worker's
    replacement overlaps its healthy sibling), and the count stays
    bounded by shards above that."""
    assert default_workers(1) == 2
    assert default_workers(2) == 2
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    assert default_workers(1) == 2
    assert default_workers(5) == 5
    assert default_workers(64) == 8
    # Exotic hosts that report one (or no) core keep the floor of 2.
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    assert default_workers(1) == 2
    assert default_workers(16) == 2
    monkeypatch.setattr(os, "cpu_count", lambda: None)
    assert default_workers(4) == 2


# ---------------------------------------------------------------------------
# WAL shipping units
# ---------------------------------------------------------------------------


def _saved_tree(path, vectors, d=3):
    tree = GaussTree(dims=d, degree=3)
    tree.extend(vectors)
    tree.save(path)
    return tree


def _keys(path):
    tree = GaussTree.open(path)
    try:
        return sorted((v.key for v in tree), key=repr)
    finally:
        tree.close()


def test_committed_length_tracks_commits_not_torn_tails(tmp_path):
    path = str(tmp_path / "cl.gauss")
    db = make_random_db(n=10, seed=80)
    _saved_tree(path, list(db))
    wal_file = path + ".wal"
    assert WriteAheadLog.committed_length(wal_file) == len(WAL_MAGIC)

    writer = GaussTree.open(path, writable=True)
    try:
        writer.insert(PFV([0.5] * 3, [0.1] * 3, key="one"))
        committed = WriteAheadLog.committed_length(wal_file)
        assert committed == os.path.getsize(wal_file) > len(WAL_MAGIC)
        # A torn record appended behind the last COMMIT is not counted.
        with open(wal_file, "ab") as f:
            f.write(b"\x40\x00\x00\x00\x01torn")
        assert WriteAheadLog.committed_length(wal_file) == committed
    finally:
        writer.close(checkpoint=False)


def test_create_replica_clones_committed_state(tmp_path):
    path = str(tmp_path / "p.gauss")
    db = make_random_db(n=12, seed=81)
    _saved_tree(path, list(db))
    writer = GaussTree.open(path, writable=True)
    try:
        writer.insert_many(
            [PFV([0.3] * 3, [0.1] * 3, key=("w", i)) for i in range(4)]
        )
        # The primary's main file is stale (state rides in the WAL); the
        # replica must still come out current and self-contained.
        rp = create_replica(path, replica_path(path, 1))
        assert rp == path + ".r1"
        assert _keys(rp) == sorted(
            [v.key for v in db] + [("w", i) for i in range(4)], key=repr
        )
        # Replica WAL is drained: its main file alone serves the state.
        assert WriteAheadLog.scan(rp + ".wal") == []
    finally:
        writer.close(checkpoint=False)


def test_shipper_forwards_increments_and_resyncs_after_foreign_reset(
    tmp_path,
):
    path = str(tmp_path / "s.gauss")
    db = make_random_db(n=10, seed=82)
    _saved_tree(path, list(db))
    shipper = WALShipper(path, [replica_path(path, 1)])
    rp = replica_path(path, 1)
    assert _keys(rp) == sorted(v.key for v in db)

    writer = GaussTree.open(path, writable=True)
    try:
        writer.insert(PFV([0.2] * 3, [0.1] * 3, key="a"))
        assert shipper.ship() == 1
        assert "a" in _keys(rp)
        assert shipper.ship() == 0  # nothing newly committed: no-op

        writer.insert(PFV([0.4] * 3, [0.1] * 3, key="b"))
        assert shipper.ship() == 1
        assert {"a", "b"} <= set(_keys(rp))

        # A checkpoint the shipper was NOT told about resets the primary
        # WAL under it; the next ship detects offset > committed length
        # and falls back to a full resync instead of mis-applying.
        writer.insert(PFV([0.6] * 3, [0.1] * 3, key="c"))
        writer.flush()
        assert shipper.ship() == 1
        assert {"a", "b", "c"} <= set(_keys(rp))

        # note_reset: the owner shipped first, then checkpointed — the
        # replicas are logically current and the offsets restart cheaply.
        writer.insert(PFV([0.8] * 3, [0.1] * 3, key="d"))
        shipper.ship()
        writer.flush()
        shipper.note_reset()
        assert shipper.ship() == 0  # current, no resync copy
        assert {"a", "b", "c", "d"} <= set(_keys(rp))
    finally:
        writer.close(checkpoint=False)


def test_lost_replica_file_is_rebuilt_on_next_ship(tmp_path):
    path = str(tmp_path / "lost.gauss")
    db = make_random_db(n=8, seed=83)
    _saved_tree(path, list(db))
    rp = replica_path(path, 1)
    shipper = WALShipper(path, [rp])
    os.unlink(rp)
    assert shipper.ship() == 1  # full resync recreates the replica
    assert _keys(rp) == sorted(v.key for v in db)


# ---------------------------------------------------------------------------
# Failover: a worker killed mid-batch answers bit-identically
# ---------------------------------------------------------------------------


@pytest.mark.skipif(os.name != "posix", reason="fork start method required")
def test_worker_killed_mid_batch_answers_bit_identical(tmp_path):
    """Kill one pool worker mid-way through a 64-query MLIQ batch: the
    retry lands on the shard's replica and the merged answers are
    bit-identical to the fault-free run — same keys, same probability
    and log-density floats."""
    db = make_random_db(n=60, seed=90)
    manifest = build_shards(db, 2, str(tmp_path / "kill"), replicas=1)
    specs = [MLIQ(make_random_query(seed=900 + i), 5) for i in range(64)]

    with connect(manifest.source_path, backend="sharded") as ref:
        expected = [list(matches) for matches in ref.execute_many(specs)]

    switch = WorkerKillSwitch(str(tmp_path / "kill.sentinel"))
    backend = ShardedBackend(
        manifest.shard_paths(),
        [s.objects for s in manifest.shards],
        inner="disk",
        pool_kind="process",
        workers=2,
        inner_options={"mliq_tolerance": 1e-12},
        manifest=manifest,
        replicas=manifest.replica_paths(),
        runner=killing_runner(_run_shard_payload, switch),
    )
    session = Session(backend)
    try:
        switch.arm()
        got = [list(matches) for matches in session.execute_many(specs)]
    finally:
        session.close()
    assert not switch.armed, "no worker consumed the kill sentinel"
    assert len(got) == len(expected) == 64
    for exp, act in zip(expected, got):
        assert [m.key for m in exp] == [m.key for m in act]
        for a, b in zip(exp, act):
            assert b.probability == a.probability  # bit-identical
            assert b.log_density == a.log_density


@pytest.mark.skipif(os.name != "posix", reason="fork start method required")
def test_replicaless_deployment_still_fails_loudly_on_kill(tmp_path):
    """Without replicas there is no failover target: the kill surfaces
    as the historical ClusterError, and the *next* batch works again
    (the broken executor is dropped)."""
    db = make_random_db(n=30, seed=91)
    manifest = build_shards(db, 2, str(tmp_path / "nokill"))
    switch = WorkerKillSwitch(str(tmp_path / "nokill.sentinel"))
    backend = ShardedBackend(
        manifest.shard_paths(),
        [s.objects for s in manifest.shards],
        inner="disk",
        pool_kind="process",
        workers=2,
        inner_options={"mliq_tolerance": 1e-12},
        manifest=manifest,
        runner=killing_runner(_run_shard_payload, switch),
    )
    session = Session(backend)
    try:
        q = make_random_query(seed=92)
        switch.arm()
        with pytest.raises(ClusterError, match="worker process died"):
            session.execute(MLIQ(q, 4))
        assert len(session.execute(MLIQ(q, 4)).matches) == 4
    finally:
        session.close()


def test_read_only_sessions_rotate_reads_across_replicas(tmp_path):
    db = make_random_db(n=20, seed=93)
    manifest = build_shards(db, 2, str(tmp_path / "rot"), replicas=2)
    with connect(manifest.source_path, backend="sharded") as s:
        backend = s._backend
        keys = {backend._task_key(i) for i in range(2)}
        assert keys == {(0, 1), (1, 1)}  # rotation 0: first replica
        backend._rotation += 1
        assert backend._task_key(0) == (0, 2)
        # Failover cycles replicas first, primary as the last resort.
        assert backend._failover_target((0, 1), 1) == (0, 2)
        assert backend._failover_target((0, 2), 2) == (0, 0)
        assert backend._failover_target((0, 0), 3) == (0, 1)
        # Queries through replica routing still answer correctly.
        q = make_random_query(seed=94)
        with connect(db, backend="tree") as ref:
            expected = {
                m.key: m.probability
                for m in ref.execute(MLIQ(q, 8)).matches
            }
        got = {m.key: m.probability for m in s.execute(MLIQ(q, 8)).matches}
        assert set(got) == set(expected)
        for key, p in got.items():
            assert p == pytest.approx(expected[key], abs=1e-9)


def test_writes_reach_replicas_without_a_checkpoint(tmp_path):
    """insert_many ships the committed WAL tail immediately: a fresh
    read-only session (which routes reads to replicas) sees the batch
    even though the primary was never flushed."""
    db = make_random_db(n=16, seed=95)
    manifest = build_shards(db, 2, str(tmp_path / "shipw"), replicas=1)
    fresh = [
        PFV([0.45, 0.45, 0.45 + 0.01 * i], [0.1] * 3, key=("live", i))
        for i in range(5)
    ]
    writer = connect(manifest.source_path, backend="sharded", writable=True)
    try:
        writer.insert_many(fresh)
        with connect(manifest.source_path, backend="sharded") as reader:
            assert len(reader) == 21
            got = {
                m.key for m in reader.execute(MLIQ(fresh[0], 21)).matches
            }
            assert {("live", i) for i in range(5)} <= got
    finally:
        writer.close()


# ---------------------------------------------------------------------------
# Online re-sharding
# ---------------------------------------------------------------------------


def test_reshard_2_to_4_under_concurrent_queries(tmp_path):
    """Queries flowing throughout a 2→4 reshard never see a wrong or
    partial answer: every fresh session answers the full reference
    result, whether it opened on the old generation or the new one."""
    db = make_random_db(n=80, seed=96)
    manifest = build_shards(db, 2, str(tmp_path / "live"))
    q = make_random_query(seed=97)
    with connect(db, backend="tree") as ref:
        expected = {
            m.key: m.probability for m in ref.execute(MLIQ(q, 12)).matches
        }

    stop = threading.Event()
    errors: list = []
    answered = [0]

    def hammer():
        while not stop.is_set():
            try:
                with connect(
                    manifest.source_path, backend="sharded"
                ) as s:
                    got = {
                        m.key: m.probability
                        for m in s.execute(MLIQ(q, 12)).matches
                    }
                if set(got) != set(expected):
                    raise AssertionError(
                        f"wrong/partial answer during reshard: {sorted(got)}"
                    )
                for key, p in got.items():
                    if abs(p - expected[key]) > 1e-9:
                        raise AssertionError(f"posterior drift on {key}")
                answered[0] += 1
            except Exception as exc:  # pragma: no cover - failure report
                errors.append(exc)
                return

    thread = threading.Thread(target=hammer)
    thread.start()
    try:
        new_manifest = reshard(manifest.source_path, 4)
    finally:
        stop.set()
        thread.join(timeout=60)
    assert not errors, errors[0]
    assert answered[0] >= 1
    assert new_manifest.generation == 1
    assert new_manifest.n_shards == 4
    assert new_manifest.total_objects == 80
    # The cutover is on disk: a fresh load sees the new generation and
    # its answers still match the single-tree reference.
    reloaded = load_manifest(manifest.source_path)
    assert reloaded.generation == 1
    assert len([p for p in reloaded.shard_paths() if p]) == 4
    with connect(manifest.source_path, backend="sharded") as s:
        got = {m.key: m.probability for m in s.execute(MLIQ(q, 12)).matches}
    assert set(got) == set(expected)
    for key, p in got.items():
        assert p == pytest.approx(expected[key], abs=1e-9)
    # Old-generation files were left alone for pre-cutover readers.
    assert os.path.exists(str(tmp_path / "live.shard-00.gauss"))


def test_reshard_preserves_replica_count_and_serves_writes_after(tmp_path):
    db = make_random_db(n=24, seed=98)
    manifest = build_shards(db, 2, str(tmp_path / "rr"), replicas=1)
    new_manifest = reshard(manifest.source_path, 3)
    assert all(
        len(s.replicas) == 1 for s in new_manifest.shards if s.objects
    )
    # The new generation takes writes like any deployment.
    fresh = PFV([0.5] * 3, [0.1] * 3, key="post-reshard")
    with connect(
        manifest.source_path, backend="sharded", writable=True
    ) as s:
        s.insert(fresh)
        assert len(s) == 25
    with connect(manifest.source_path, backend="sharded") as s:
        got = {m.key for m in s.execute(MLIQ(fresh, 25)).matches}
    assert "post-reshard" in got


def test_reshard_refuses_cutover_on_count_mismatch(tmp_path):
    import json

    db = make_random_db(n=10, seed=99)
    manifest = build_shards(db, 2, str(tmp_path / "bad"))
    with open(manifest.source_path) as f:
        doc = json.load(f)
    doc["shards"][0]["objects"] += 3  # lie about the count
    with open(manifest.source_path, "w") as f:
        json.dump(doc, f)
    with pytest.raises(ClusterError, match="refusing to cut over"):
        reshard(manifest.source_path, 4)
    # The sabotaged manifest was not replaced (no cutover happened).
    assert load_manifest(manifest.source_path).generation == 0


def test_reshard_validates_arguments(tmp_path):
    db = make_random_db(n=6, seed=100)
    manifest = build_shards(db, 2, str(tmp_path / "val"))
    with pytest.raises(ValueError, match="new_n_shards"):
        reshard(manifest.source_path, 0)
    with pytest.raises(ValueError, match="unknown partition policy"):
        reshard(manifest.source_path, 3, policy="modulo")


# ---------------------------------------------------------------------------
# The elasticity property
# ---------------------------------------------------------------------------


class _InjectedLoss(RuntimeError):
    pass


class _FlakyRunner:
    """Serial-pool stand-in for a worker loss: while the sentinel file
    exists, the first shard task to run claims it (unlink is atomic) and
    fails — exercising the same failover hook a dead process does."""

    def __init__(self, sentinel: str) -> None:
        self.sentinel = sentinel

    def __call__(self, session, payload):
        try:
            os.unlink(self.sentinel)
        except FileNotFoundError:
            pass
        else:
            raise _InjectedLoss("injected worker loss")
        return _run_shard_payload(session, payload)


@settings(max_examples=5, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_base=st.integers(6, 16),
    ops=st.lists(
        st.sampled_from(["write", "flush", "query", "kill+query"]),
        min_size=2,
        max_size=7,
    ),
)
def test_interleaved_workload_with_failovers_matches_single_tree(
    tmp_path_factory, seed, n_base, ops
):
    """Random interleaving of writes, checkpoints, queries and injected
    worker losses (failing over between two replicas) answers within
    1e-9 of one in-memory tree over the same surviving objects."""
    tmp = tmp_path_factory.mktemp("elastic")
    db = make_random_db(n=n_base, seed=seed)
    manifest = build_shards(
        db, 2, str(tmp / "prop"), policy="round-robin", replicas=2
    )
    sentinel = str(tmp / "loss.sentinel")
    alive = list(db)
    serial = 0
    writer = connect(manifest.source_path, backend="sharded", writable=True)
    try:
        for op in ops:
            if op == "write":
                batch = [
                    PFV(
                        [0.1 + 0.02 * ((serial + j) % 40)] * 3,
                        [0.12] * 3,
                        key=("prop", serial + j),
                    )
                    for j in range(2)
                ]
                serial += len(batch)
                writer.insert_many(batch)
                alive.extend(batch)
                continue
            if op == "flush":
                writer.flush()
                continue
            if op == "kill+query":
                with open(sentinel, "w"):
                    pass
            fresh = load_manifest(manifest.source_path)
            backend = ShardedBackend(
                fresh.shard_paths(),
                [s.objects for s in fresh.shards],
                inner="disk",
                pool_kind="serial",
                workers=None,
                inner_options={"mliq_tolerance": 1e-12},
                manifest=fresh,
                replicas=fresh.replica_paths(),
                runner=_FlakyRunner(sentinel),
            )
            reader = Session(backend)
            try:
                q = make_random_query(seed=seed + serial + 1)
                k = min(5, len(alive))
                got = reader.execute(MLIQ(q, k)).matches
            finally:
                reader.close()
            assert not os.path.exists(sentinel)
            reference = GaussTree(dims=3, degree=3)
            reference.extend(alive)
            exp, _ = reference.mliq(MLIQuery(q, k))
            assert {m.key for m in got} == {m.key for m in exp}
            exp_p = {m.key: m.probability for m in exp}
            for m in got:
                assert m.probability == pytest.approx(
                    exp_p[m.key], abs=1e-9
                )
    finally:
        writer.close()


# ---------------------------------------------------------------------------
# The re-identification churn property
# ---------------------------------------------------------------------------


@settings(max_examples=5, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_base=st.integers(6, 14),
    ops=st.lists(
        st.sampled_from(
            ["identify+insert", "kill+identify", "expire", "flush"]
        ),
        min_size=3,
        max_size=8,
    ),
)
def test_reid_churn_with_worker_kills_matches_single_tree_replay(
    tmp_path_factory, seed, n_base, ops
):
    """The re-identification workload as a property: a randomized
    identify-then-insert / sliding-window-expire stream over a writable
    round-robin 2-shard x 2-replica cluster, with worker losses injected
    mid-batch during identification, scores every ConsensusTopK and
    ExpectedRank answer within 1e-9 of one in-memory tree replayed over
    the same surviving tracks. Expiry also deletes an already-expired
    ghost each round, pinning the clean not-found path under churn."""
    tmp = tmp_path_factory.mktemp("reid")
    db = make_random_db(n=n_base, seed=seed)
    manifest = build_shards(
        db, 2, str(tmp / "reid"), policy="round-robin", replicas=2
    )
    sentinel = str(tmp / "loss.sentinel")
    alive = list(db)
    window: list[PFV] = []  # FIFO of churned-in tracks, stalest first
    serial = 0
    writer = connect(manifest.source_path, backend="sharded", writable=True)
    try:
        for op in ops:
            if op == "flush":
                writer.flush()
                continue
            if op == "expire":
                # Sliding window: the two stalest churned-in tracks go.
                for _ in range(2):
                    if window:
                        stale = window.pop(0)
                        assert writer.delete(stale) is True
                        alive.remove(stale)
                # A track expired in an earlier round (or never inserted)
                # is a clean miss, never a ClusterError.
                ghost = PFV([0.7] * 3, [0.1] * 3, key=("reid", "ghost"))
                assert writer.delete(ghost) is False
                continue
            if op == "kill+identify":
                with open(sentinel, "w"):
                    pass
            # Identify: rank the observation against the live cluster
            # under both semantics, through a reader whose runner loses
            # a worker mid-batch whenever the sentinel is armed.
            q = make_random_query(seed=seed + 31 * serial + 7)
            k = min(4, len(alive))
            fresh = load_manifest(manifest.source_path)
            backend = ShardedBackend(
                fresh.shard_paths(),
                [s.objects for s in fresh.shards],
                inner="disk",
                pool_kind="serial",
                workers=None,
                inner_options={"mliq_tolerance": 1e-12},
                manifest=fresh,
                replicas=fresh.replica_paths(),
                runner=_FlakyRunner(sentinel),
            )
            reader = Session(backend)
            try:
                got_consensus = reader.execute(ConsensusTopK(q, k)).matches
                got_erank = reader.execute(ExpectedRank(q, k)).matches
            finally:
                reader.close()
            assert not os.path.exists(sentinel)
            with connect(PFVDatabase(alive), backend="tree") as reference:
                exp_consensus = reference.execute(
                    ConsensusTopK(q, k)
                ).matches
                exp_erank = reference.execute(ExpectedRank(q, k)).matches
            for got, exp in (
                (got_consensus, exp_consensus),
                (got_erank, exp_erank),
            ):
                assert {m.key for m in got} == {m.key for m in exp}
                exp_by_key = {m.key: m for m in exp}
                for m in got:
                    ref = exp_by_key[m.key]
                    assert m.probability == pytest.approx(
                        ref.probability, abs=1e-9
                    )
                    assert m.score == pytest.approx(ref.score, abs=1e-9)
            if op == "identify+insert":
                # Identify-then-insert: the observation becomes a new
                # track regardless of whether it matched (re-observation
                # of a known identity keeps its own track version).
                track = PFV(q.mu, q.sigma, key=("reid", serial))
                serial += 1
                writer.insert(track)
                alive.append(track)
                window.append(track)
    finally:
        writer.close()
