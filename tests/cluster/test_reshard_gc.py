"""Old-generation garbage collection: ``reshard_gc`` lifecycle.

``reshard`` deliberately leaves the previous generation's shard files on
disk so pre-cutover sessions keep answering; ``reshard_gc`` is the
deferred reclaim. Its safety contract, pinned here:

* a shard file still held open by a live pre-cutover reader is reported
  ``busy``, never deleted (the flock probe covers both the writer lock
  and the shared reader-presence lock);
* ``--dry-run`` reports the same decisions without touching disk;
* once the last reader closes, the files (and their WAL/lock sidecars)
  go, the current generation keeps serving bit-identical answers, and a
  second pass is an idempotent no-op.
"""

import fcntl  # noqa: F401 - skip the module when flock is unavailable
import os

import pytest

from repro.cluster import load_manifest, reshard, reshard_gc
from repro.cluster.partition import build_shards
from repro.engine import MLIQ, connect

from tests.conftest import make_random_db, make_random_query


def _old_generation_files(tmp_path, stem):
    return sorted(
        name
        for name in os.listdir(tmp_path)
        if name.startswith(f"{stem}.shard-")
        and not name.startswith(f"{stem}.gen")
    )


def test_reshard_gc_lifecycle_respects_live_readers(tmp_path):
    db = make_random_db(n=60, seed=131)
    manifest = build_shards(db, 2, str(tmp_path / "gc"))
    q = make_random_query(seed=132)
    with connect(db, backend="tree") as ref:
        expected = {
            m.key: m.probability for m in ref.execute(MLIQ(q, 10)).matches
        }

    # A pre-cutover reader: shard sessions open lazily, so it must run
    # a query to actually hold the generation-0 files open.
    reader = connect(manifest.source_path, backend="sharded")
    assert {
        m.key for m in reader.execute(MLIQ(q, 10)).matches
    } == set(expected)

    reshard(manifest.source_path, 3)

    # Dry run: the held files are busy, nothing is deleted.
    report = reshard_gc(manifest.source_path, dry_run=True)
    assert report["dry_run"] is True
    assert report["deleted"] == []
    assert len(report["busy"]) >= 1
    old_files = _old_generation_files(tmp_path, "gc")
    assert any(name.endswith(".shard-00.gauss") for name in old_files)

    # A real pass while the reader lives makes the same call.
    report = reshard_gc(manifest.source_path)
    assert report["deleted"] == []
    assert len(report["busy"]) >= 1
    # ... and the reader still answers correctly afterwards.
    got = {
        m.key: m.probability for m in reader.execute(MLIQ(q, 10)).matches
    }
    assert set(got) == set(expected)
    for key, p in got.items():
        assert p == pytest.approx(expected[key], abs=1e-9)

    reader.close()

    # Last reader gone: the old generation (sidecars included) is
    # reclaimed and the report accounts for real bytes.
    report = reshard_gc(manifest.source_path)
    assert report["busy"] == []
    assert len(report["deleted"]) >= 1
    assert report["reclaimed_bytes"] > 0
    remaining = _old_generation_files(tmp_path, "gc")
    live = {
        os.path.basename(p)
        for p in load_manifest(manifest.source_path).shard_paths()
    }
    assert set(remaining) <= live

    # Idempotent: a second pass finds nothing.
    report = reshard_gc(manifest.source_path)
    assert report["deleted"] == []
    assert report["busy"] == []
    assert report["reclaimed_bytes"] == 0

    # The surviving generation serves bit-identical answers.
    with connect(manifest.source_path, backend="sharded") as session:
        got = {
            m.key: m.probability
            for m in session.execute(MLIQ(q, 10)).matches
        }
    assert set(got) == set(expected)
    for key, p in got.items():
        assert p == pytest.approx(expected[key], abs=1e-9)


def test_reshard_gc_without_prior_reshard_is_a_noop(tmp_path):
    db = make_random_db(n=20, seed=133)
    manifest = build_shards(db, 2, str(tmp_path / "noop"))
    report = reshard_gc(manifest.source_path)
    assert report == {
        "generation": 0,
        "deleted": [],
        "busy": [],
        "reclaimed_bytes": 0,
        "dry_run": False,
    }


def test_reshard_gc_reclaims_replicas_of_old_generations(tmp_path):
    db = make_random_db(n=30, seed=134)
    manifest = build_shards(db, 2, str(tmp_path / "repl"), replicas=1)
    reshard(manifest.source_path, 3)
    report = reshard_gc(manifest.source_path)
    deleted = {os.path.basename(p) for p in report["deleted"]}
    # Both the primaries and their .r1 replicas of generation 0 go.
    assert any(name.endswith(".gauss") for name in deleted)
    assert any(".gauss.r" in name for name in deleted)
    reloaded = load_manifest(manifest.source_path)
    live = [p for p in reloaded.shard_paths() if p]
    for group in reloaded.replica_paths():
        live.extend(group if isinstance(group, (list, tuple)) else [group])
    for path in report["deleted"]:
        assert path not in {os.path.realpath(p) for p in live}
        assert not os.path.exists(path)
