"""The ``repro serve`` HTTP endpoint and its stdlib client.

A real ThreadingHTTPServer on an ephemeral port per test module: the
wire answers must match a direct ``Session.execute_many`` bit for bit,
malformed requests must come back as structured JSON errors (never a
hung connection or a dead handler thread), and concurrent clients must
all be answered.
"""

import json
import threading
import urllib.request

import pytest

from repro.cluster import QueryServer, RemoteError, ServeClient, serve
from repro.engine import MLIQ, TIQ, RankQuery, connect

from tests.conftest import make_random_db, make_random_query


@pytest.fixture(scope="module")
def served():
    db = make_random_db(n=40, seed=50)
    session = connect(db, backend="sharded", shards=2)
    with serve(session, port=0) as server:
        yield server, session, db
    session.close()


@pytest.fixture
def client(served):
    server, _, _ = served
    return ServeClient(server.url, timeout=30)


def test_healthz_reports_backend_and_size(served, client):
    _, session, db = served
    payload = client.healthz()
    assert payload["status"] == "ok"
    assert payload["backend"] == session.backend_name
    assert payload["objects"] == len(db)


def test_query_answers_match_direct_session(served, client):
    _, session, _ = served
    q = make_random_query(seed=51)
    specs = [MLIQ(q, 5), TIQ(q, 0.2), RankQuery(q, 9, min_mass=0.9)]
    answer = client.query(specs)
    direct = session.execute_many(specs)
    assert answer.backend == session.backend_name
    assert answer.keys() == [
        [m.key for m in matches] for matches in direct
    ]
    for remote_matches, local_matches in zip(answer.results, direct):
        for r, m in zip(remote_matches, local_matches):
            assert r["probability"] == pytest.approx(
                m.probability, abs=1e-12
            )
            assert r["log_density"] == pytest.approx(
                m.log_density, rel=1e-12
            )
    # Sharded sessions expose the per-shard breakdown over the wire.
    assert len(answer.provenance) > 0
    assert answer.stats["pages_accessed"] >= 0


def test_single_bare_spec_body_is_accepted(served):
    server, _, _ = served
    q = make_random_query(seed=52)
    body = json.dumps(
        {
            "kind": "mliq",
            "mu": [float(x) for x in q.mu],
            "sigma": [float(x) for x in q.sigma],
            "k": 3,
        }
    ).encode()
    request = urllib.request.Request(
        server.url + "/query",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        payload = json.loads(response.read())
    assert payload["n_queries"] == 1
    assert len(payload["results"][0]) == 3


def test_stats_accumulate(served, client):
    before = client.stats()
    client.query(MLIQ(make_random_query(seed=53), 2))
    after = client.stats()
    assert after["queries"] >= before["queries"] + 1
    assert after["batches"] >= before["batches"] + 1
    assert after["queries_by_kind"].get("mliq", 0) >= 1


@pytest.mark.parametrize(
    "path,body,status,fragment",
    [
        ("/nope", None, 404, "unknown path"),
        ("/query", b"{malformed", 400, "not JSON"),
        ("/query", b'{"queries": []}', 400, "no queries"),
        ("/query", b'{"queries": {"kind": "mliq"}}', 400, "must be a list"),
        (
            "/query",
            b'{"queries": [{"kind": "knn", "mu": [0.1], "sigma": [0.1]}]}',
            400,
            "unknown query kind",
        ),
        (
            "/query",
            b'{"queries": [{"kind": "mliq", "mu": [0.1]}]}',
            400,
            "missing field",
        ),
    ],
)
def test_bad_requests_answer_structured_errors(
    served, path, body, status, fragment
):
    server, _, _ = served
    request = urllib.request.Request(
        server.url + path,
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST" if body is not None else "GET",
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=30)
    assert excinfo.value.code == status
    detail = json.loads(excinfo.value.read())
    assert fragment in detail["error"]


def test_execution_error_is_500_not_a_dead_connection(served, client):
    # Dimension mismatch only surfaces inside execution.
    bad = MLIQ(make_random_query(d=7, seed=54), 2)
    with pytest.raises(RemoteError) as excinfo:
        client.query(bad)
    assert excinfo.value.status == 500
    # The handler thread survived: the server still answers.
    assert client.healthz()["status"] == "ok"


def test_oversized_body_rejection_does_not_corrupt_the_connection(served):
    """Early rejects (body never read) must drop the keep-alive
    connection — otherwise the unread body bytes would be parsed as the
    next request line on that connection."""
    import socket

    server, _, _ = served
    host, port = server.address
    with socket.create_connection((host, port), timeout=30) as sock:
        declared = 128 * 1024 * 1024  # over MAX_BODY_BYTES
        sock.sendall(
            (
                "POST /query HTTP/1.1\r\n"
                f"Host: {host}\r\n"
                f"Content-Length: {declared}\r\n"
                "Content-Type: application/json\r\n"
                "\r\n"
            ).encode()
            + b'{"queries": []}'  # a fragment of the never-sent body
        )
        sock.settimeout(30)
        response = sock.recv(65536)
        assert b"413" in response.split(b"\r\n", 1)[0]
        # The server closes the connection instead of serving the
        # leftover bytes as a bogus second request.
        trailing = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            trailing += chunk
        assert b"unsupported method" not in trailing.lower()
        assert b"501" not in trailing


def test_client_surfaces_unreachable_server():
    dead = ServeClient("http://127.0.0.1:1", timeout=2)
    with pytest.raises(RemoteError, match="cannot reach"):
        dead.healthz()


def test_concurrent_clients_are_all_answered(served, client):
    _, session, _ = served
    q = make_random_query(seed=55)
    expected = [m.key for m in session.execute(MLIQ(q, 4)).matches]
    results: list = [None] * 8
    errors: list = []

    def hit(i):
        try:
            results[i] = client.query(MLIQ(q, 4)).keys()[0]
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [
        threading.Thread(target=hit, args=(i,)) for i in range(len(results))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    assert all(r == expected for r in results)


def test_double_start_and_address_before_start_raise():
    db = make_random_db(n=5, seed=56)
    with connect(db, backend="tree") as session:
        server = QueryServer(session, port=0)
        with pytest.raises(RuntimeError, match="not started"):
            server.address
        server.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()
        finally:
            server.shutdown()


# ---------------------------------------------------------------------------
# Session pool + the write endpoint
# ---------------------------------------------------------------------------


def test_stats_expose_session_pool_utilisation(served, client):
    payload = client.stats()
    pool = payload["session_pool"]
    assert pool["size"] == 1
    assert pool["in_use"] >= 0
    assert pool["peak_in_use"] >= 1
    assert pool["acquires"] >= 1
    assert pool["waits"] >= 0
    assert len(pool["batches_per_session"]) == pool["size"]
    assert sum(pool["batches_per_session"]) >= pool["acquires"] - pool["size"]


def test_pooled_sessions_serve_concurrent_queries(served):
    """pool_size=3: concurrent clients spread over the replicas (no
    single execution lock) and all answer identically."""
    _, session, db = served
    factory = lambda: connect(db, backend="sharded", shards=2)  # noqa: E731
    q = make_random_query(seed=57)
    primary = connect(db, backend="sharded", shards=2)
    with serve(
        primary, port=0, session_factory=factory, pool_size=3
    ) as server:
        client = ServeClient(server.url, timeout=30)
        expected = client.query(MLIQ(q, 4)).keys()[0]
        results: list = [None] * 9
        errors: list = []

        def hit(i):
            try:
                results[i] = client.query(MLIQ(q, 4)).keys()[0]
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=hit, args=(i,))
            for i in range(len(results))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert all(r == expected for r in results)
        pool = client.stats()["session_pool"]
        assert pool["size"] == 3
        assert sum(pool["batches_per_session"]) >= 10
    primary.close()


def test_pool_size_above_one_requires_a_factory():
    db = make_random_db(n=5, seed=58)
    with connect(db, backend="tree") as session:
        with pytest.raises(ValueError, match="session_factory"):
            QueryServer(session, port=0, pool_size=2)
        with pytest.raises(ValueError, match="pool_size"):
            QueryServer(session, port=0, pool_size=0)


def test_insert_endpoint_round_trip_and_stats():
    from repro.core.pfv import PFV

    db = make_random_db(n=20, seed=59)
    session = connect(db, backend="sharded", shards=2, inner="tree",
                      writable=True)
    with serve(session, port=0) as server:
        client = ServeClient(server.url, timeout=30)
        fresh = [
            PFV([0.4, 0.4, 0.4 + 0.01 * i], [0.1, 0.1, 0.1], key=("srv", i))
            for i in range(6)
        ]
        reply = client.insert(fresh)
        assert reply["inserted"] == 6
        assert reply["objects"] == 26
        # The writes are queryable through the same primary session
        # (tuple keys serialize as JSON lists on the wire).
        answer = client.query(MLIQ(fresh[0], 26))
        assert ["srv", 0] in answer.keys()[0]
        stats = client.stats()
        assert stats["inserts"] == 6
        assert stats["insert_batches"] == 1
        # One pfv (not a list) also works.
        single = client.insert(PFV([0.5, 0.5, 0.5], [0.1, 0.1, 0.1],
                                   key="solo"))
        assert single["objects"] == 27
    session.close()


def test_insert_rejected_on_read_only_server(served, client):
    from repro.core.pfv import PFV

    with pytest.raises(RemoteError) as excinfo:
        client.insert(PFV([0.1, 0.1, 0.1], [0.1, 0.1, 0.1], key="ro"))
    assert excinfo.value.status == 403
    assert "read-only" in str(excinfo.value)


def test_query_endpoint_refuses_write_specs(served):
    server, _, _ = served
    body = json.dumps(
        {
            "queries": [
                {"kind": "insert", "mu": [0.1, 0.1, 0.1],
                 "sigma": [0.1, 0.1, 0.1], "key": "w"}
            ]
        }
    ).encode()
    request = urllib.request.Request(
        server.url + "/query",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=30)
    assert excinfo.value.code == 400
    assert "/insert" in json.loads(excinfo.value.read())["error"]


def test_insert_endpoint_validates_bodies():
    db = make_random_db(n=5, seed=70)
    session = connect(db, backend="tree")
    with serve(session, port=0) as server:
        for body, fragment in (
            (b'{"nope": []}', "vectors"),
            (b'{"vectors": {}}', "must be a list"),
            (b'{"vectors": []}', "no vectors"),
            (b'{"vectors": [{"mu": [0.1]}]}', "missing field"),
        ):
            request = urllib.request.Request(
                server.url + "/insert",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 400
            assert fragment in json.loads(excinfo.value.read())["error"]
    session.close()


def test_write_spec_wire_round_trip():
    """Insert/Delete specs (and tuple keys) survive the JSON wire."""
    from repro.cluster import spec_from_json, spec_to_json
    from repro.core.pfv import PFV
    from repro.engine import Delete, Insert

    for spec in (
        Insert(PFV([0.1, 0.2], [0.1, 0.1], key=("a", 1))),
        Insert(PFV([0.1, 0.2], [0.1, 0.1])),  # anonymous
        Delete(PFV([0.3, 0.4], [0.2, 0.2], key="plain")),
    ):
        wire = spec_to_json(spec)
        back = spec_from_json(json.loads(json.dumps(wire)))
        assert type(back) is type(spec)
        assert back.v.key == spec.v.key
        assert list(back.v.mu) == list(spec.v.mu)
        assert list(back.v.sigma) == list(spec.v.sigma)


def test_insert_is_read_your_writes_through_replica_sessions(tmp_path):
    """Replica-backed pools are read-your-writes (regression): an
    accepted ``/insert`` flushes the primary, WAL-ships the shards'
    replicas and marks every pooled replica session stale, so a query
    served by *any* pool slot — refreshed on acquire — sees the write.
    Before the fix, replica slots served pre-insert snapshots."""
    from repro.cluster.partition import build_shards
    from repro.core.pfv import PFV

    db = make_random_db(n=20, seed=73)
    manifest = build_shards(db, 2, str(tmp_path / "ryw"), replicas=1)
    primary = connect(manifest.source_path, backend="sharded", writable=True)
    factory = lambda: connect(manifest.source_path, backend="sharded")  # noqa: E731
    with serve(
        primary, port=0, session_factory=factory, pool_size=3
    ) as server:
        client = ServeClient(server.url, timeout=30)
        fresh = [
            PFV([0.45, 0.45, 0.45 + 0.01 * i], [0.1] * 3, key=("ryw", i))
            for i in range(4)
        ]
        assert client.insert(fresh)["objects"] == 24
        expected = {("ryw", i) for i in range(4)}
        results: list = [None] * 9
        errors: list = []

        def hit(i):
            try:
                answer = client.query(MLIQ(fresh[0], 24))
                results[i] = {
                    tuple(k) if isinstance(k, list) else k
                    for k in answer.keys()[0]
                }
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        # Concurrent queries spread over all three pool slots; every
        # slot (primary and both replica sessions) must see the insert.
        threads = [
            threading.Thread(target=hit, args=(i,))
            for i in range(len(results))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        for seen in results:
            assert expected <= seen
    primary.close()


def test_restarted_server_reopens_fresh_replicas():
    """shutdown() closes the replica sessions; a restarted server must
    not hand queries to those closed sessions (regression)."""
    db = make_random_db(n=10, seed=71)
    primary = connect(db, backend="tree")
    server = QueryServer(
        primary,
        port=0,
        session_factory=lambda: connect(db, backend="tree"),
        pool_size=2,
    )
    try:
        server.serve_in_background()
        client = ServeClient(server.url, timeout=30)
        client.query(MLIQ(make_random_query(seed=72), 2))
        server.shutdown()
        server.serve_in_background()
        client = ServeClient(server.url, timeout=30)
        for _ in range(6):  # enough batches to hit every pool slot
            answer = client.query(MLIQ(make_random_query(seed=72), 2))
            assert len(answer.results[0]) == 2
        assert client.stats()["session_pool"]["size"] == 2
    finally:
        server.shutdown()
        primary.close()
