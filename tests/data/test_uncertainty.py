"""Tests of the sigma generators."""

import numpy as np
import pytest

from repro.data.uncertainty import (
    lognormal_sigmas,
    mixed_precision_sigmas,
    per_object_quality_sigmas,
    uniform_sigmas,
)


class TestUniform:
    def test_range_and_shape(self, rng):
        s = uniform_sigmas(rng, 50, 4, 0.1, 0.5)
        assert s.shape == (50, 4)
        assert np.all((s >= 0.1) & (s <= 0.5))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            uniform_sigmas(rng, 0, 4, 0.1, 0.5)
        with pytest.raises(ValueError):
            uniform_sigmas(rng, 5, 4, 0.0, 0.5)
        with pytest.raises(ValueError):
            uniform_sigmas(rng, 5, 4, 0.5, 0.1)


class TestLognormal:
    def test_positive_and_median(self, rng):
        s = lognormal_sigmas(rng, 4000, 2, median=0.1, spread=0.5)
        assert np.all(s > 0)
        assert np.median(s) == pytest.approx(0.1, rel=0.1)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            lognormal_sigmas(rng, 5, 2, median=0.0)
        with pytest.raises(ValueError):
            lognormal_sigmas(rng, 5, 2, median=0.1, spread=-1.0)


class TestMixedPrecision:
    def test_two_bands(self, rng):
        s = mixed_precision_sigmas(
            rng, 2000, 5, p_bad=0.25, good=(1e-3, 1e-2), bad=(0.1, 0.5)
        )
        good_cells = s <= 1e-2
        bad_cells = s >= 0.1
        assert np.all(good_cells | bad_cells)  # nothing between the bands
        assert np.mean(bad_cells) == pytest.approx(0.25, abs=0.03)

    def test_p_bad_extremes(self, rng):
        all_good = mixed_precision_sigmas(rng, 100, 3, p_bad=0.0)
        assert np.all(all_good <= 2e-3)
        all_bad = mixed_precision_sigmas(rng, 100, 3, p_bad=1.0)
        assert np.all(all_bad >= 0.02)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            mixed_precision_sigmas(rng, 10, 3, p_bad=1.5)
        with pytest.raises(ValueError):
            mixed_precision_sigmas(rng, 10, 3, good=(0.0, 1.0))


class TestPerObjectQuality:
    def test_quality_is_shared_within_object(self, rng):
        s = per_object_quality_sigmas(
            rng, 200, 6, low=0.1, high=0.1001, quality_spread=50.0
        )
        # base is ~constant, so within-object variation is tiny while
        # between-object variation is huge.
        within = np.std(s, axis=1).mean()
        between = np.std(s.mean(axis=1))
        assert between > 10 * within

    def test_range(self, rng):
        s = per_object_quality_sigmas(rng, 100, 3, 0.05, 0.1, quality_spread=3.0)
        assert np.all(s >= 0.05)
        assert np.all(s <= 0.1 * 3.0 + 1e-12)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            per_object_quality_sigmas(rng, 10, 3, 0.1, 0.05)
        with pytest.raises(ValueError):
            per_object_quality_sigmas(rng, 10, 3, 0.05, 0.1, quality_spread=0.5)


class TestDeterminism:
    def test_same_seed_same_output(self):
        a = mixed_precision_sigmas(np.random.default_rng(5), 20, 3)
        b = mixed_precision_sigmas(np.random.default_rng(5), 20, 3)
        assert np.array_equal(a, b)
