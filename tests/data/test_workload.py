"""Tests of the ground-truthed identification workload generator."""

import numpy as np
import pytest

from repro.data.synthetic import uniform_pfv_dataset
from repro.data.workload import identification_workload

from tests.conftest import make_random_db


class TestProtocol:
    def test_ground_truth_keys_exist(self, small_db):
        wl = identification_workload(small_db, 20, seed=1)
        keys = set(small_db.keys())
        assert len(wl) == 20
        for item in wl:
            assert item.true_key in keys

    def test_sampling_without_replacement(self, small_db):
        wl = identification_workload(small_db, len(small_db), seed=2)
        assert len({item.true_key for item in wl}) == len(small_db)

    def test_observed_means_near_truth(self):
        db = make_random_db(n=50, d=3, seed=3, sigma_low=0.01, sigma_high=0.02)
        wl = identification_workload(db, 30, seed=4)
        by_key = {v.key: v for v in db}
        for item in wl:
            v = by_key[item.true_key]
            z = np.abs(item.q.mu - v.mu) / v.sigma
            assert np.all(z < 6.0)  # re-observation noise uses the object's sigma

    def test_noise_scale_zero_reproduces_means(self, small_db):
        wl = identification_workload(
            small_db, 10, seed=5, observation_noise_scale=0.0
        )
        by_key = {v.key: v for v in small_db}
        for item in wl:
            assert item.q.mu == pytest.approx(by_key[item.true_key].mu)

    def test_default_query_sigmas_bootstrap_database_rows(self):
        db = uniform_pfv_dataset(n=200)
        wl = identification_workload(db, 25, seed=6)
        rows = {tuple(np.round(r, 12)) for r in db.sigma_matrix}
        for item in wl:
            assert tuple(np.round(item.q.sigma, 12)) in rows

    def test_custom_sigma_sampler(self, small_db):
        wl = identification_workload(
            small_db,
            5,
            seed=7,
            sigma_sampler=lambda r, n, d: np.full((n, d), 0.123),
        )
        for item in wl:
            assert item.q.sigma == pytest.approx([0.123] * small_db.dims)

    def test_determinism(self, small_db):
        a = identification_workload(small_db, 10, seed=8)
        b = identification_workload(small_db, 10, seed=8)
        for x, y in zip(a, b):
            assert x.true_key == y.true_key
            assert np.array_equal(x.q.mu, y.q.mu)

    def test_validation(self, small_db):
        with pytest.raises(ValueError):
            identification_workload(small_db, 0)
        with pytest.raises(ValueError):
            identification_workload(small_db, len(small_db) + 1)
        with pytest.raises(ValueError):
            identification_workload(small_db, 5, observation_noise_scale=-1.0)
        with pytest.raises(ValueError):
            identification_workload(
                small_db, 5, sigma_sampler=lambda r, n, d: np.zeros((n, d + 1))
            )
