"""Tests of the dataset generators (data set 1 substitute and data set 2)."""

import numpy as np
import pytest

from repro.core.joint import SigmaRule
from repro.data.histograms import (
    DS1_SIGMA_BANDS,
    color_histogram_dataset,
    color_histogram_matrix,
)
from repro.data.synthetic import (
    DS2_SIGMA_BANDS,
    clustered_pfv_dataset,
    database_from_arrays,
    uniform_pfv_dataset,
)


class TestHistogramMatrix:
    def test_simplex_property(self):
        h = color_histogram_matrix(n=500, d=27)
        assert h.shape == (500, 27)
        assert np.all(h >= 0.0)
        assert h.sum(axis=1) == pytest.approx(np.ones(500))

    def test_clustered_structure(self):
        # Objects from the same prototype should be much closer than
        # objects from different prototypes on average.
        h = color_histogram_matrix(n=400, d=27, clusters=4, seed=3)
        dists = np.linalg.norm(h[:100, None, :] - h[None, :100, :], axis=2)
        near = np.partition(dists + np.eye(100) * 9, 1, axis=1)[:, 1]
        assert near.mean() < dists.mean() / 2

    def test_determinism(self):
        a = color_histogram_matrix(n=50, seed=7)
        b = color_histogram_matrix(n=50, seed=7)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            color_histogram_matrix(n=0)
        with pytest.raises(ValueError):
            color_histogram_matrix(n=10, clusters=0)
        with pytest.raises(ValueError):
            color_histogram_matrix(n=10, concentration=0.0)


class TestDatasets:
    def test_ds1_shape_and_keys(self):
        db = color_histogram_dataset(n=300)
        assert len(db) == 300
        assert db.dims == 27
        assert db.keys() == list(range(300))

    def test_ds1_sigma_bands_calibration(self):
        db = color_histogram_dataset(n=500)
        s = db.sigma_matrix
        good_hi = DS1_SIGMA_BANDS["good"][1]
        bad_lo = DS1_SIGMA_BANDS["bad"][0]
        assert np.all((s <= good_hi) | (s >= bad_lo))

    def test_ds1_band_override(self):
        db = color_histogram_dataset(n=100, p_bad=0.0)
        assert np.all(db.sigma_matrix <= DS1_SIGMA_BANDS["good"][1])

    def test_ds2_defaults(self):
        db = uniform_pfv_dataset(n=400)
        assert db.dims == 10
        assert np.all((db.mu_matrix >= 0.0) & (db.mu_matrix <= 1.0))
        s = db.sigma_matrix
        assert np.all(
            (s <= DS2_SIGMA_BANDS["good"][1]) | (s >= DS2_SIGMA_BANDS["bad"][0])
        )

    def test_clustered_dataset(self):
        db = clustered_pfv_dataset(n=300, d=4, clusters=3, seed=2)
        assert len(db) == 300 and db.dims == 4

    def test_clustered_validation(self):
        with pytest.raises(ValueError):
            clustered_pfv_dataset(n=10, clusters=0)

    def test_sigma_rule_propagates(self):
        db = uniform_pfv_dataset(n=50, sigma_rule=SigmaRule.PAPER)
        assert db.sigma_rule is SigmaRule.PAPER


class TestDatabaseFromArrays:
    def test_keys_offset(self, rng):
        mu = rng.uniform(0, 1, (5, 2))
        sg = rng.uniform(0.1, 0.2, (5, 2))
        db = database_from_arrays(mu, sg, key_offset=100)
        assert db.keys() == [100, 101, 102, 103, 104]

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            database_from_arrays(np.zeros(5), np.ones(5))
        with pytest.raises(ValueError):
            database_from_arrays(np.zeros((5, 2)), np.ones((5, 3)))
