"""Durability of the writable disk-opened Gauss-tree.

The acceptance bar of the write path is stated as two properties and
enforced here with hypothesis:

* **Crash prefix-consistency** — for a random insert (or insert/delete)
  workload and a random crash point measured in written bytes, killing
  the writer mid-flight and reopening the index always recovers, and
  the recovered tree equals an in-memory replay of exactly the
  operations that completed before the crash (every completed operation
  is fsync-durable; the one in flight is torn away by WAL replay).
* **Mutate-then-query equivalence** — interleaved inserts, deletes and
  queries on a writable opened tree answer identically to a fresh
  in-memory tree holding the same surviving objects, and after a
  checkpoint the reopened tree reports the *same logical page-access
  counts* as the live writable tree.

Crash points are injected with :mod:`repro.storage.fault`; budgets are
drawn small enough to die inside the very first WAL record and large
enough to survive the whole workload, so commit boundaries, torn page
images, torn commits, checkpoints and recovery itself all get hit.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pfv import PFV
from repro.core.queries import MLIQuery, ThresholdQuery
from repro.gausstree.persist import read_header, save_tree
from repro.gausstree.tree import GaussTree
from repro.storage.fault import FaultInjector, InjectedCrash
from repro.storage.wal import WriteAheadLog

from tests.conftest import make_random_query


def make_vectors(rng, n, d, tag):
    return [
        PFV(
            rng.uniform(0.0, 1.0, d),
            rng.uniform(0.05, 0.4, d),
            key=(tag, i),
        )
        for i in range(n)
    ]


def build_saved(path, base, d, degree=3):
    tree = GaussTree(dims=d, degree=degree)
    tree.extend(base)
    tree.save(path)
    return tree


def assert_same_answers(expected_tree, actual_tree, d, seed, k=5, theta=0.2):
    """MLIQ and TIQ agreement; exact key order (same structure) is not
    assumed — posteriors are a property of the object *set*."""
    q = make_random_query(d=d, seed=seed)
    exp, _ = expected_tree.mliq(MLIQuery(q, k))
    act, _ = actual_tree.mliq(MLIQuery(q, k))
    assert {m.key for m in exp} == {m.key for m in act}
    exp_p = {m.key: m.probability for m in exp}
    for m in act:
        assert m.probability == pytest.approx(exp_p[m.key], abs=1e-9)
    exp_t, _ = expected_tree.tiq(ThresholdQuery(q, theta))
    act_t, _ = actual_tree.tiq(ThresholdQuery(q, theta))
    assert {m.key for m in exp_t} == {m.key for m in act_t}


class TestCrashRecovery:
    @given(
        d=st.integers(1, 3),
        seed=st.integers(0, 10_000),
        n_base=st.integers(0, 30),
        n_extra=st.integers(1, 20),
        budget=st.integers(1, 250_000),
    )
    @settings(deadline=None)  # example budget comes from the active profile
    def test_crash_during_inserts_recovers_durable_prefix(
        self, tmp_path_factory, d, seed, n_base, n_extra, budget
    ):
        path = str(tmp_path_factory.mktemp("crash") / "t.gauss")
        rng = np.random.default_rng(seed)
        base = make_vectors(rng, n_base, d, "base")
        extra = make_vectors(rng, n_extra, d, "extra")
        build_saved(path, base, d)

        injector = FaultInjector(budget)
        completed = 0
        writable = None
        try:
            writable = GaussTree.open(
                path, writable=True, file_factory=injector.open
            )
            for v in extra:
                writable.insert(v)
                completed += 1
            writable.flush()
        except InjectedCrash:
            pass
        finally:
            if writable is not None:
                writable.close(checkpoint=False)

        recovered = GaussTree.open(path)
        try:
            # Every completed insert was committed and (in the
            # written-bytes-are-durable fault model) is recoverable;
            # the torn one vanishes: an exact prefix.
            assert len(recovered) == n_base + completed
            recovered.check_invariants()
            assert sorted(v.key for v in recovered) == sorted(
                v.key for v in base + extra[:completed]
            )
            replay = GaussTree(dims=d, degree=3)
            replay.extend(base + extra[:completed])
            assert_same_answers(replay, recovered, d, seed + 1)
        finally:
            recovered.close()

    @given(
        d=st.integers(1, 2),
        seed=st.integers(0, 10_000),
        n_base=st.integers(4, 25),
        budget=st.integers(1, 400_000),
        ops=st.lists(st.integers(0, 2), min_size=1, max_size=18),
    )
    @settings(deadline=None)
    def test_crash_during_mixed_ops_recovers_a_replayable_prefix(
        self, tmp_path_factory, d, seed, n_base, budget, ops
    ):
        """Inserts *and* deletes: the durable prefix must replay to the
        same object set and answers, including condense/reinsert ops
        whose WAL transactions span many pages."""
        path = str(tmp_path_factory.mktemp("mixed") / "t.gauss")
        rng = np.random.default_rng(seed)
        base = make_vectors(rng, n_base, d, "base")
        fresh = iter(make_vectors(rng, len(ops), d, "fresh"))
        build_saved(path, base, d)

        injector = FaultInjector(budget)
        applied: list[tuple[str, PFV]] = []
        writable = None
        try:
            writable = GaussTree.open(
                path, writable=True, file_factory=injector.open
            )
            alive = list(base)
            for op in ops:
                if op < 2 or not alive:  # bias 2:1 toward inserts
                    v = next(fresh)
                    writable.insert(v)
                    applied.append(("insert", v))
                    alive.append(v)
                else:
                    victim = alive.pop(int(rng.integers(len(alive))))
                    assert writable.delete(victim)
                    applied.append(("delete", victim))
        except InjectedCrash:
            # The op in flight did not complete: drop it from the replay.
            pass
        finally:
            if writable is not None:
                writable.close(checkpoint=False)

        recovered = GaussTree.open(path)
        try:
            recovered.check_invariants()
            replay = GaussTree(dims=d, degree=3)
            replay.extend(base)
            for kind, v in applied[: len(applied)]:
                if kind == "insert":
                    replay.insert(v)
                else:
                    assert replay.delete(v)
            # The crash may have torn the last *uncompleted* op only.
            assert len(recovered) == len(replay)
            assert sorted(v.key for v in recovered) == sorted(
                v.key for v in replay
            )
            assert_same_answers(replay, recovered, d, seed + 2)
        finally:
            recovered.close()

    @given(
        d=st.integers(1, 3),
        seed=st.integers(0, 10_000),
        n_base=st.integers(0, 25),
        batch_sizes=st.lists(st.integers(1, 12), min_size=1, max_size=6),
        budget=st.integers(1, 300_000),
    )
    @settings(deadline=None)
    def test_group_commit_batches_recover_all_or_nothing(
        self, tmp_path_factory, d, seed, n_base, batch_sizes, budget
    ):
        """A torn write inside a batched WAL transaction must discard
        the *whole* batch: recovery yields exactly the fully committed
        batch prefix, never a partial batch (the group's single COMMIT
        is the only thing that makes any of it durable)."""
        path = str(tmp_path_factory.mktemp("group") / "t.gauss")
        rng = np.random.default_rng(seed)
        base = make_vectors(rng, n_base, d, "base")
        build_saved(path, base, d)
        batches = []
        for b, size in enumerate(batch_sizes):
            batches.append(make_vectors(rng, size, d, f"batch{b}"))

        injector = FaultInjector(budget)
        committed_batches = 0
        writable = None
        try:
            writable = GaussTree.open(
                path, writable=True, file_factory=injector.open
            )
            for batch in batches:
                writable.insert_many(batch)
                committed_batches += 1
        except InjectedCrash:
            pass  # the batch in flight is torn away whole
        finally:
            if writable is not None:
                writable.close(checkpoint=False)

        recovered = GaussTree.open(path)
        try:
            survivors = [
                v for batch in batches[:committed_batches] for v in batch
            ]
            # All-or-nothing per batch: the recovered key set is the
            # base plus exactly the complete committed batches — a
            # partial batch would show up as a key-count mismatch here.
            assert len(recovered) == n_base + len(survivors)
            recovered.check_invariants()
            assert sorted(v.key for v in recovered) == sorted(
                v.key for v in base + survivors
            )
            replay = GaussTree(dims=d, degree=3)
            replay.extend(base + survivors)
            assert_same_answers(replay, recovered, d, seed + 3)
        finally:
            recovered.close()

    @given(seed=st.integers(0, 10_000), budget=st.integers(1, 120_000))
    @settings(deadline=None)
    def test_crash_during_checkpoint_loses_nothing(
        self, tmp_path_factory, seed, budget
    ):
        """Once an op committed, a crash inside flush() cannot undo it:
        the WAL's CKPT_BASE snapshot makes replay independent of the
        half-rewritten main file."""
        d = 2
        path = str(tmp_path_factory.mktemp("ckpt") / "t.gauss")
        rng = np.random.default_rng(seed)
        base = make_vectors(rng, 15, d, "base")
        extra = make_vectors(rng, 8, d, "extra")
        build_saved(path, base, d)
        writable = GaussTree.open(path, writable=True)
        for v in extra:
            writable.insert(v)
        # Swap crash injection in *after* the inserts so the budget is
        # spent inside the checkpoint's own writes.
        injector = FaultInjector(budget)
        store_file = writable.store._file
        wal_file = writable._writer.wal._file
        from repro.storage.fault import FaultyFile

        writable.store._file = FaultyFile(store_file, injector)
        writable._writer.wal._file = FaultyFile(wal_file, injector)
        crashed = False
        try:
            writable.flush()
        except InjectedCrash:
            crashed = True
        finally:
            writable.close(checkpoint=False)

        recovered = GaussTree.open(path)
        try:
            assert len(recovered) == len(base) + len(extra)
            recovered.check_invariants()
            replay = GaussTree(dims=d, degree=3)
            replay.extend(base + extra)
            assert_same_answers(replay, recovered, d, seed + 3)
        finally:
            recovered.close()
        # With a tiny budget the checkpoint must actually have died —
        # guard against the test silently not exercising the crash.
        if budget < 1000:
            assert crashed

    @given(seed=st.integers(0, 10_000), budget=st.integers(1, 60_000))
    @settings(deadline=None)
    def test_crash_during_recovery_recovers_on_retry(
        self, tmp_path_factory, seed, budget
    ):
        """Recovery is idempotent: kill it mid-replay, run it again."""
        d = 2
        path = str(tmp_path_factory.mktemp("rec") / "t.gauss")
        rng = np.random.default_rng(seed)
        base = make_vectors(rng, 10, d, "base")
        extra = make_vectors(rng, 6, d, "extra")
        build_saved(path, base, d)
        writable = GaussTree.open(path, writable=True)
        for v in extra:
            writable.insert(v)
        writable.close(checkpoint=False)  # leave everything in the WAL

        injector = FaultInjector(budget)
        try:
            crashed_open = GaussTree.open(path, file_factory=injector.open)
            crashed_open.close()
        except InjectedCrash:
            pass

        recovered = GaussTree.open(path)  # real files: replay completes
        try:
            assert len(recovered) == len(base) + len(extra)
            recovered.check_invariants()
        finally:
            recovered.close()


class TestMutateQueryEquivalence:
    @given(
        d=st.integers(1, 3),
        seed=st.integers(0, 10_000),
        n_base=st.integers(2, 40),
        ops=st.lists(st.integers(0, 3), min_size=1, max_size=25),
    )
    @settings(deadline=None)
    def test_interleaved_ops_match_in_memory_tree(
        self, tmp_path_factory, d, seed, n_base, ops
    ):
        path = str(tmp_path_factory.mktemp("equiv") / "t.gauss")
        rng = np.random.default_rng(seed)
        base = make_vectors(rng, n_base, d, "base")
        fresh = iter(make_vectors(rng, len(ops), d, "fresh"))
        build_saved(path, base, d)
        writable = GaussTree.open(path, writable=True, fsync=False)
        try:
            alive = list(base)
            query_round = 0
            for op in ops:
                if op <= 1 or not alive:
                    v = next(fresh)
                    writable.insert(v)
                    alive.append(v)
                elif op == 2:
                    victim = alive.pop(int(rng.integers(len(alive))))
                    assert writable.delete(victim)
                else:
                    query_round += 1
                    reference = GaussTree(dims=d, degree=3)
                    reference.extend(alive)
                    assert len(writable) == len(alive)
                    assert_same_answers(
                        reference, writable, d, seed + query_round
                    )
            writable.check_invariants()
            final_reference = GaussTree(dims=d, degree=3)
            final_reference.extend(alive)
            assert_same_answers(final_reference, writable, d, seed + 99)

            # Write-back consistency: checkpoint, reopen cold, and the
            # reopened tree must answer identically *with identical
            # logical page-access counts* to the live writable tree.
            writable.flush()
            reopened = GaussTree.open(path)
            try:
                assert sorted(v.key for v in reopened) == sorted(
                    v.key for v in alive
                )
                q = make_random_query(d=d, seed=seed + 7)
                writable.store.cold_start()
                live_matches, live_stats = writable.mliq(MLIQuery(q, 4))
                reopened.store.cold_start()
                disk_matches, disk_stats = reopened.mliq(MLIQuery(q, 4))
                assert [m.key for m in live_matches] == [
                    m.key for m in disk_matches
                ]
                assert (
                    disk_stats.pages_accessed == live_stats.pages_accessed
                )
                assert disk_stats.nodes_expanded == live_stats.nodes_expanded
            finally:
                reopened.close()
        finally:
            writable.close()


class TestWritableLifecycle:
    def test_v1_files_still_open_read_only(self, tmp_path):
        import struct

        path = str(tmp_path / "v1.gauss")
        rng = np.random.default_rng(3)
        base = make_vectors(rng, 30, 2, "b")
        mem = GaussTree(dims=2, degree=3)
        mem.extend(base)
        mem.save(path, version=2)  # v1 files hold interleaved leaf pages
        # A v2 file with an empty free list is byte-compatible with v1
        # except for the version field: rewrite it to forge a PR-1 file.
        with open(path, "r+b") as f:
            f.seek(8)
            f.write(struct.pack("<H", 1))
        meta = read_header(path)
        assert meta["version"] == 1
        assert meta["free_pages"] == ()
        reopened = GaussTree.open(path)
        try:
            assert reopened.read_only
            assert_same_answers(mem, reopened, 2, seed=11)
            with pytest.raises(RuntimeError, match="read-only"):
                reopened.insert(base[0])
        finally:
            reopened.close()
        with pytest.raises(ValueError, match="format v1"):
            GaussTree.open(path, writable=True)

    def test_default_open_stays_read_only(self, tmp_path):
        path = str(tmp_path / "ro.gauss")
        rng = np.random.default_rng(5)
        build_saved(path, make_vectors(rng, 20, 2, "b"), 2)
        reopened = GaussTree.open(path)
        try:
            with pytest.raises(RuntimeError, match="read-only"):
                reopened.insert(
                    PFV(np.array([0.5, 0.5]), np.array([0.1, 0.1]), key="x")
                )
        finally:
            reopened.close()

    def test_open_close_without_ops_leaves_file_untouched(self, tmp_path):
        path = str(tmp_path / "idle.gauss")
        rng = np.random.default_rng(6)
        build_saved(path, make_vectors(rng, 25, 2, "b"), 2)
        before = open(path, "rb").read()
        tree = GaussTree.open(path, writable=True)
        tree.close()
        assert open(path, "rb").read() == before

    def test_deletes_populate_free_list_and_splits_reuse_it(self, tmp_path):
        path = str(tmp_path / "free.gauss")
        rng = np.random.default_rng(7)
        base = make_vectors(rng, 120, 2, "b")
        build_saved(path, base, 2)
        original_pages = read_header(path)["page_count"]

        tree = GaussTree.open(path, writable=True, fsync=False)
        for v in base[:70]:
            assert tree.delete(v)
        tree.flush()
        meta = read_header(path)
        assert meta["free_pages"], "node dissolution must free pages"
        freed = len(meta["free_pages"])
        # page_count is a high-water mark: deletes never grow the file.
        assert meta["page_count"] <= original_pages

        replacement = make_vectors(rng, 70, 2, "r")
        for v in replacement:
            tree.insert(v)
        tree.flush()
        after = read_header(path)
        # Same population as the start: reuse must keep the file from
        # growing beyond its original footprint plus at most the freed
        # ids that were dropped from the capped list (none here).
        assert len(after["free_pages"]) < max(freed, 1)
        assert after["page_count"] <= original_pages + 1
        tree.close()

        reopened = GaussTree.open(path)
        try:
            reopened.check_invariants()
            assert len(reopened) == 120
        finally:
            reopened.close()

    def test_unsupported_key_fails_before_mutating(self, tmp_path):
        path = str(tmp_path / "badkey.gauss")
        rng = np.random.default_rng(8)
        build_saved(path, make_vectors(rng, 12, 2, "b"), 2)
        tree = GaussTree.open(path, writable=True)
        try:
            with pytest.raises(TypeError, match="cannot persist key"):
                tree.insert(
                    PFV(
                        np.array([0.5, 0.5]),
                        np.array([0.1, 0.1]),
                        key=frozenset({1}),
                    )
                )
            assert len(tree) == 12  # nothing half-applied
            tree.insert(
                PFV(np.array([0.5, 0.5]), np.array([0.1, 0.1]), key="fine")
            )
        finally:
            tree.close()
        reopened = GaussTree.open(path)
        try:
            assert len(reopened) == 13
        finally:
            reopened.close()


class TestSaveFlushesWal:
    def test_save_with_pending_dirty_pages_flushes_the_wal_first(
        self, tmp_path
    ):
        """Regression: GaussTree.save on a writable tree must checkpoint
        before replacing the file. Without the flush, the old WAL (stale
        page ids into the *new* compacted file) survives the save and is
        replayed on the next open, corrupting the index — exactly what
        save_tree alone does."""
        path = str(tmp_path / "race.gauss")
        rng = np.random.default_rng(9)
        base = make_vectors(rng, 40, 2, "b")
        build_saved(path, base, 2)
        tree = GaussTree.open(path, writable=True)
        extra = make_vectors(rng, 25, 2, "x")
        for v in extra:
            tree.insert(v)
        # Pending state: committed WAL transactions, dirty pages, stale
        # main file. save() must flush all of it before compacting.
        assert not tree._writer.wal.is_empty
        tree.save(path)
        assert tree._writer.wal.is_empty
        tree.close()
        reopened = GaussTree.open(path)
        try:
            assert len(reopened) == 65
            reopened.check_invariants()
        finally:
            reopened.close()

    def test_raw_save_tree_leaves_no_replayable_wal_behind(self, tmp_path):
        """Defense in depth below GaussTree.save: a raw save_tree over a
        *held* index is refused outright (it would race the writer), and
        over a released index it clears the stale WAL whose page images
        would otherwise replay over the freshly compacted file."""
        import sys

        path = str(tmp_path / "hazard.gauss")
        rng = np.random.default_rng(10)
        base = make_vectors(rng, 40, 2, "b")
        build_saved(path, base, 2)
        tree = GaussTree.open(path, writable=True)
        for v in make_vectors(rng, 25, 2, "x"):
            tree.insert(v)
        assert WriteAheadLog.scan(path + ".wal")
        if sys.platform != "win32":
            with pytest.raises(RuntimeError, match="open writable"):
                save_tree(tree, path)  # held by our own writer: refused
        assert len(list(tree)) == 65  # materialize before the store closes
        tree.close(checkpoint=False)  # release; stale WAL stays behind
        assert WriteAheadLog.scan(path + ".wal")
        save_tree(tree, path)  # no live writer now: compact + clear WAL
        assert WriteAheadLog.scan(path + ".wal") == []
        reopened = GaussTree.open(path)
        try:
            assert len(reopened) == 65
            reopened.check_invariants()
        finally:
            reopened.close()

    def test_writable_tree_survives_in_place_save_and_keeps_writing(
        self, tmp_path
    ):
        path = str(tmp_path / "inplace.gauss")
        rng = np.random.default_rng(11)
        base = make_vectors(rng, 50, 2, "b")
        build_saved(path, base, 2)
        tree = GaussTree.open(path, writable=True)
        first = make_vectors(rng, 20, 2, "f")
        for v in first:
            tree.insert(v)
        tree.save(path)  # compacting in-place save rebinds page ids
        second = make_vectors(rng, 15, 2, "s")
        for v in second:
            tree.insert(v)
        assert tree.delete(base[0])
        tree.close()
        reopened = GaussTree.open(path)
        try:
            assert len(reopened) == 50 + 20 + 15 - 1
            reopened.check_invariants()
            reference = GaussTree(dims=2, degree=3)
            reference.extend(base[1:] + first + second)
            assert_same_answers(reference, reopened, 2, seed=12)
        finally:
            reopened.close()

    def test_plain_save_tree_clears_a_stale_foreign_wal(self, tmp_path):
        """Rebuilding an index over a path whose previous writable
        session left a WAL behind (e.g. `repro insert --no-flush` then
        `repro build`) must not let the stale WAL replay over the fresh
        file on the next open."""
        path = str(tmp_path / "rebuild.gauss")
        rng = np.random.default_rng(15)
        base = make_vectors(rng, 30, 2, "b")
        build_saved(path, base, 2)
        stale_writer = GaussTree.open(path, writable=True)
        for v in make_vectors(rng, 10, 2, "x"):
            stale_writer.insert(v)
        stale_writer.close(checkpoint=False)  # state rides in the WAL
        assert WriteAheadLog.scan(path + ".wal")
        # A completely unrelated rebuild over the same path...
        replacement = make_vectors(rng, 20, 2, "new")
        fresh = GaussTree(dims=2, degree=3)
        fresh.extend(replacement)
        save_tree(fresh, path)
        # ...must leave nothing for recovery to replay.
        assert WriteAheadLog.scan(path + ".wal") == []
        reopened = GaussTree.open(path)
        try:
            assert sorted(v.key for v in reopened) == sorted(
                v.key for v in replacement
            )
            reopened.check_invariants()
        finally:
            reopened.close()

    def test_failed_rollback_is_retried_before_the_next_commit(
        self, tmp_path
    ):
        """If a commit *and* its WAL rollback both fail (disk full), a
        later commit must not append behind the torn bytes — recovery
        would discard it despite the acknowledged fsync."""
        path = str(tmp_path / "poison.gauss")
        rng = np.random.default_rng(16)
        base = make_vectors(rng, 20, 2, "b")
        build_saved(path, base, 2)
        tree = GaussTree.open(path, writable=True)
        writer = tree._writer

        class _DiskFull(OSError):
            pass

        real_file = writer.wal._file

        class _FailingTail:
            """Tears one write mid-record, fails everything (rollback
            included) until healed, then behaves like the real file."""

            def __init__(self) -> None:
                self.state = "tear"

            def write(self, data):
                if self.state == "tear":
                    self.state = "dead"
                    return real_file.write(data[: max(1, len(data) // 2)])
                if self.state == "dead":
                    raise _DiskFull("no space")
                return real_file.write(data)

            def truncate(self, size=None):
                if self.state == "dead":
                    raise _DiskFull("no space")
                return real_file.truncate(size)

            def __getattr__(self, name):
                return getattr(real_file, name)

        failing = _FailingTail()
        writer.wal._file = failing
        with pytest.raises(_DiskFull):
            tree.insert(
                PFV(np.array([0.5, 0.5]), np.array([0.1, 0.1]), key="lost")
            )
        assert writer._pending_rollback is not None
        # "Space freed": writes work again; the next insert must first
        # re-truncate the torn tail, then commit reachable records.
        failing.state = "ok"
        tree.insert(
            PFV(np.array([0.6, 0.6]), np.array([0.1, 0.1]), key="durable")
        )
        assert writer._pending_rollback is None
        tree.close(checkpoint=False)
        recovered = GaussTree.open(path)
        try:
            keys = {v.key for v in recovered}
            assert "durable" in keys
        finally:
            recovered.close()

    def test_close_after_failed_commit_keeps_file_openable(self, tmp_path):
        """Regression: a commit that dies mid-WAL-append leaves the
        mutation in the live tree but not in the store; a later
        close()/flush() must re-commit those pages before writing a
        header that describes the live tree — otherwise n_objects and
        the page images disagree and the file never opens again."""
        path = str(tmp_path / "failcommit.gauss")
        rng = np.random.default_rng(17)
        base = make_vectors(rng, 20, 2, "b")
        build_saved(path, base, 2)
        tree = GaussTree.open(path, writable=True)
        writer = tree._writer
        real_file = writer.wal._file

        class _Dies:
            def __init__(self) -> None:
                self.state = "tear"

            def write(self, data):
                if self.state == "tear":
                    self.state = "dead"
                    return real_file.write(data[: max(1, len(data) // 2)])
                if self.state == "dead":
                    raise OSError("no space")
                return real_file.write(data)

            def truncate(self, size=None):
                if self.state == "dead":
                    raise OSError("no space")
                return real_file.truncate(size)

            def __getattr__(self, name):
                return getattr(real_file, name)

        dies = _Dies()
        writer.wal._file = dies
        with pytest.raises(OSError):
            tree.insert(
                PFV(np.array([0.5, 0.5]), np.array([0.1, 0.1]), key="inmem")
            )
        assert len(tree) == 21  # the mutation survives in memory
        dies.state = "ok"  # space freed before the close
        tree.close()  # checkpoint: must publish the pending mutation
        reopened = GaussTree.open(path)
        try:
            assert len(reopened) == 21
            assert "inmem" in {v.key for v in reopened}
            reopened.check_invariants()
        finally:
            reopened.close()

    def test_second_writable_open_is_refused(self, tmp_path, monkeypatch):
        import sys

        from repro.gausstree import persist

        if sys.platform == "win32":
            pytest.skip("advisory flock locking is POSIX-only")
        monkeypatch.setattr(persist, "_LOCK_RETRY_SECONDS", 0.05)
        path = str(tmp_path / "locked.gauss")
        rng = np.random.default_rng(18)
        build_saved(path, make_vectors(rng, 15, 2, "b"), 2)
        first = GaussTree.open(path, writable=True)
        try:
            with pytest.raises(RuntimeError, match="single-writer"):
                GaussTree.open(path, writable=True)
        finally:
            first.close()
        # Released on close: the index is writable again.
        again = GaussTree.open(path, writable=True)
        again.close()

    def test_reader_does_not_truncate_a_live_writers_wal(self, tmp_path):
        import sys

        if sys.platform == "win32":
            pytest.skip("advisory flock locking is POSIX-only")
        path = str(tmp_path / "live.gauss")
        rng = np.random.default_rng(19)
        base = make_vectors(rng, 20, 2, "b")
        build_saved(path, base, 2)
        writer_tree = GaussTree.open(path, writable=True)
        for v in make_vectors(rng, 5, 2, "x"):
            writer_tree.insert(v)
        wal_size = os.path.getsize(path + ".wal")
        assert wal_size > 8
        # A concurrent reader must *not* replay-and-truncate the live
        # writer's WAL; it serves the last-checkpoint state instead.
        reader = GaussTree.open(path)
        try:
            assert len(reader) == 20  # pre-insert checkpointed state
        finally:
            reader.close()
        assert os.path.getsize(path + ".wal") == wal_size
        # The writer's subsequent commits stay recoverable.
        for v in make_vectors(rng, 3, 2, "y"):
            writer_tree.insert(v)
        writer_tree.close(checkpoint=False)
        recovered = GaussTree.open(path)
        try:
            assert len(recovered) == 28
        finally:
            recovered.close()

    def test_reader_keeps_pre_checkpoint_snapshot_across_flush(
        self, tmp_path
    ):
        """Reader snapshot isolation (regression): a checkpoint racing an
        open read-only session must not swap pages under the reader. The
        checkpoint publishes a *new generation* by atomic rename, so the
        reader's open descriptor keeps the pre-checkpoint image and its
        answers stay frozen; only a fresh open sees the new state."""
        path = str(tmp_path / "snap.gauss")
        rng = np.random.default_rng(22)
        base = make_vectors(rng, 20, 2, "b")
        build_saved(path, base, 2)
        writer = GaussTree.open(path, writable=True)
        reader = GaussTree.open(path)
        try:
            extra = make_vectors(rng, 10, 2, "x")
            writer.insert_many(extra)
            writer.flush()  # checkpoint while the reader is open
            # The reader is sealed to its snapshot: same object set and
            # same answers as before the checkpoint, page for page.
            assert len(reader) == 20
            reader.check_invariants()
            pre = GaussTree(dims=2, degree=3)
            pre.extend(base)
            assert_same_answers(pre, reader, 2, seed=23)
            # Concurrently, the writer's view includes the new batch...
            assert len(writer) == 30
        finally:
            reader.close()
            writer.close()
        # ...and so does every session opened after the checkpoint.
        fresh = GaussTree.open(path)
        try:
            assert len(fresh) == 30
            post = GaussTree(dims=2, degree=3)
            post.extend(base + extra)
            assert_same_answers(post, fresh, 2, seed=24)
        finally:
            fresh.close()

    def test_read_only_open_writes_no_sidecar_files(self, tmp_path):
        """Regression: opening a clean index read-only must not create
        lock (or any other) files — PR-1 read-only opens worked from
        read-only media and must keep doing so."""
        path = str(tmp_path / "pristine.gauss")
        rng = np.random.default_rng(20)
        build_saved(path, make_vectors(rng, 15, 2, "b"), 2)
        before = sorted(os.listdir(tmp_path))
        tree = GaussTree.open(path)
        tree.close()
        assert sorted(os.listdir(tmp_path)) == before

    def test_save_over_a_live_foreign_writer_is_refused(self, tmp_path):
        import sys

        if sys.platform == "win32":
            pytest.skip("advisory flock locking is POSIX-only")
        path = str(tmp_path / "held.gauss")
        rng = np.random.default_rng(21)
        base = make_vectors(rng, 15, 2, "b")
        build_saved(path, base, 2)
        holder = GaussTree.open(path, writable=True)
        try:
            other = GaussTree(dims=2, degree=3)
            other.extend(make_vectors(rng, 10, 2, "x"))
            # A raw save_tree (what `repro build` does) over the held
            # index would truncate the holder's WAL: refuse loudly.
            with pytest.raises(RuntimeError, match="open writable"):
                save_tree(other, path)
            # The holder's own in-place save stays legal.
            holder.insert(make_vectors(rng, 1, 2, "y")[0])
            holder.save(path)
        finally:
            holder.close()
        reopened = GaussTree.open(path)
        try:
            assert len(reopened) == 16
        finally:
            reopened.close()

    def test_save_to_other_path_keeps_source_writable(self, tmp_path):
        src = str(tmp_path / "src.gauss")
        dst = str(tmp_path / "dst.gauss")
        rng = np.random.default_rng(12)
        base = make_vectors(rng, 30, 2, "b")
        build_saved(src, base, 2)
        tree = GaussTree.open(src, writable=True)
        extra = make_vectors(rng, 10, 2, "x")
        for v in extra:
            tree.insert(v)
        tree.save(dst)
        # The copy is a clean, complete snapshot...
        snapshot = GaussTree.open(dst)
        try:
            assert len(snapshot) == 40
            snapshot.check_invariants()
        finally:
            snapshot.close()
        # ...and the source keeps accepting (durable) writes.
        tree.insert(make_vectors(rng, 1, 2, "y")[0])
        tree.close()
        reopened = GaussTree.open(src)
        try:
            assert len(reopened) == 41
        finally:
            reopened.close()


class TestWalHousekeeping:
    def test_checkpoint_empties_wal_and_main_file_serves_alone(self, tmp_path):
        path = str(tmp_path / "hk.gauss")
        rng = np.random.default_rng(13)
        base = make_vectors(rng, 20, 2, "b")
        build_saved(path, base, 2)
        tree = GaussTree.open(path, writable=True)
        for v in make_vectors(rng, 10, 2, "x"):
            tree.insert(v)
        wal_file = path + ".wal"
        assert WriteAheadLog.scan(wal_file)
        tree.flush()
        assert WriteAheadLog.scan(wal_file) == []
        assert os.path.getsize(wal_file) == 8  # just the magic
        tree.close()
        # Recovery has nothing to do; the main file alone is current.
        reopened = GaussTree.open(path)
        try:
            assert len(reopened) == 30
        finally:
            reopened.close()

    def test_close_without_checkpoint_defers_to_recovery(self, tmp_path):
        path = str(tmp_path / "defer.gauss")
        rng = np.random.default_rng(14)
        base = make_vectors(rng, 20, 2, "b")
        build_saved(path, base, 2)
        stale_main = open(path, "rb").read()
        tree = GaussTree.open(path, writable=True)
        for v in make_vectors(rng, 10, 2, "x"):
            tree.insert(v)
        tree.close(checkpoint=False)
        # Main file untouched, WAL carries the state...
        assert open(path, "rb").read() == stale_main
        # ...until any open (read-only included) replays it.
        reopened = GaussTree.open(path)
        try:
            assert len(reopened) == 30
            reopened.check_invariants()
        finally:
            reopened.close()
        assert open(path, "rb").read() != stale_main
        assert WriteAheadLog.scan(path + ".wal") == []


class TestAutoCheckpoint:
    """WAL-size-triggered checkpoints: ``auto_checkpoint_bytes``."""

    def test_wal_stays_bounded_and_state_reaches_main_file(self, tmp_path):
        path = str(tmp_path / "auto.gauss")
        rng = np.random.default_rng(21)
        base = make_vectors(rng, 15, 2, "b")
        build_saved(path, base, 2)
        limit = 64 * 1024
        tree = GaussTree.open(path, writable=True, auto_checkpoint_bytes=limit)
        try:
            wal_path = path + ".wal"
            high_water = 0
            for v in make_vectors(rng, 60, 2, "x"):
                tree.insert(v)
                high_water = max(high_water, os.path.getsize(wal_path))
            # The workload writes far more than `limit` bytes of log in
            # total (~30 KB of page images per insert), so the bound can
            # only hold because checkpoints fired along the way; between
            # operations the WAL never exceeds limit + one transaction.
            assert high_water <= limit + 256 * 1024
            assert high_water > len(WriteAheadLog(wal_path).path)  # sanity
        finally:
            tree.close(checkpoint=False)
        # State landed in the main file via auto-checkpoints (plus a WAL
        # tail for the ops after the last trigger), so a plain reopen
        # serves everything.
        reopened = GaussTree.open(path)
        try:
            assert len(reopened) == 75
            reopened.check_invariants()
        finally:
            reopened.close()

    def test_rejects_non_positive_limit(self, tmp_path):
        path = str(tmp_path / "bad.gauss")
        rng = np.random.default_rng(3)
        build_saved(path, make_vectors(rng, 5, 2, "b"), 2)
        with pytest.raises(ValueError):
            GaussTree.open(path, writable=True, auto_checkpoint_bytes=0)

    @given(
        seed=st.integers(0, 10_000),
        n_extra=st.integers(1, 20),
        budget=st.integers(1, 400_000),
        limit=st.sampled_from([1, 4_096, 32_768, 131_072]),
    )
    @settings(deadline=None)  # example budget comes from the active profile
    def test_crash_with_auto_checkpoint_recovers_durable_prefix(
        self, tmp_path_factory, seed, n_extra, budget, limit
    ):
        """The crash-harness case for auto-checkpoint: with the trigger
        armed (down to 'after every op'), a crash at any byte — commits
        and the *triggered* checkpoints included — still recovers the
        exact completed-operation prefix."""
        d = 2
        path = str(tmp_path_factory.mktemp("autockpt") / "t.gauss")
        rng = np.random.default_rng(seed)
        base = make_vectors(rng, 10, d, "base")
        extra = make_vectors(rng, n_extra, d, "extra")
        build_saved(path, base, d)

        injector = FaultInjector(budget)
        completed = 0
        writable = None
        try:
            writable = GaussTree.open(
                path,
                writable=True,
                auto_checkpoint_bytes=limit,
                file_factory=injector.open,
            )
            for v in extra:
                writable.insert(v)
                completed += 1
        except InjectedCrash:
            pass
        finally:
            if writable is not None:
                try:
                    writable.close(checkpoint=False)
                except InjectedCrash:
                    pass

        recovered = GaussTree.open(path)
        try:
            # Every insert that returned is durable. One more may be:
            # when the crash lands in the WAL-triggered checkpoint *after*
            # that insert's commit fsynced, the operation is durable even
            # though insert() raised — same contract as an explicit
            # flush() crashing after a successful commit.
            n = len(recovered)
            assert n in (10 + completed, 10 + completed + 1)
            recovered.check_invariants()
            assert sorted(v.key for v in recovered) == sorted(
                v.key for v in base + extra[: n - 10]
            )
        finally:
            recovered.close()


class TestGroupCommitMechanics:
    """Deterministic shape checks on the batched WAL transaction."""

    def test_insert_many_is_one_txn_with_deduped_pages(self, tmp_path):
        from repro.storage.wal import REC_PAGE
        import struct

        path = str(tmp_path / "t.gauss")
        rng = np.random.default_rng(0)
        base = make_vectors(rng, 12, 2, "base")
        build_saved(path, base, 2)
        writable = GaussTree.open(path, writable=True)
        writable.insert_many(make_vectors(rng, 16, 2, "grp"))
        txns = WriteAheadLog.scan(path + ".wal")
        writable.close(checkpoint=False)
        # One COMMIT seals the whole 16-insert batch...
        assert len(txns) == 1
        # ...and within it every dirtied page is logged exactly once.
        page_ids = [
            struct.unpack_from("<I", payload, 0)[0]
            for rtype, payload in txns[0]
            if rtype == REC_PAGE
        ]
        assert len(page_ids) == len(set(page_ids))

    def test_insert_many_logs_far_fewer_bytes_than_per_op(self, tmp_path):
        rng = np.random.default_rng(1)
        base = make_vectors(rng, 20, 2, "base")
        extra = make_vectors(rng, 32, 2, "x")
        sizes = {}
        for mode in ("per_op", "grouped"):
            path = str(tmp_path / f"{mode}.gauss")
            build_saved(path, base, 2)
            writable = GaussTree.open(path, writable=True)
            if mode == "per_op":
                for v in extra:
                    writable.insert(v)
            else:
                writable.insert_many(extra)
            sizes[mode] = os.path.getsize(path + ".wal")
            writable.close(checkpoint=False)
            recovered = GaussTree.open(path)
            assert len(recovered) == len(base) + len(extra)
            recovered.close()
        # Page-image dedup: the grouped WAL must be several times
        # smaller (each touched page logged once, not once per insert).
        assert sizes["grouped"] * 3 < sizes["per_op"], sizes

    def test_insert_many_answers_like_per_op_inserts(self, tmp_path):
        rng = np.random.default_rng(2)
        base = make_vectors(rng, 15, 2, "base")
        extra = make_vectors(rng, 20, 2, "x")
        path = str(tmp_path / "g.gauss")
        build_saved(path, base, 2)
        writable = GaussTree.open(path, writable=True)
        writable.insert_many(extra)
        writable.check_invariants()
        reference = GaussTree(dims=2, degree=3)
        reference.extend(base + extra)
        assert_same_answers(reference, writable, 2, seed=9)
        writable.close()

    def test_insert_many_on_in_memory_tree_is_a_plain_loop(self):
        rng = np.random.default_rng(3)
        tree = GaussTree(dims=2, degree=3)
        n = tree.insert_many(make_vectors(rng, 10, 2, "m"))
        assert n == 10 and len(tree) == 10
        tree.check_invariants()

    def test_insert_many_validates_before_mutating(self, tmp_path):
        path = str(tmp_path / "v.gauss")
        rng = np.random.default_rng(4)
        build_saved(path, make_vectors(rng, 8, 2, "base"), 2)
        writable = GaussTree.open(path, writable=True)
        good = make_vectors(rng, 3, 2, "ok")
        with pytest.raises(ValueError, match="3-d"):
            writable.insert_many(good + make_vectors(rng, 1, 3, "bad"))
        with pytest.raises(TypeError, match="cannot persist key"):
            writable.insert_many(
                good + [PFV([0.1, 0.2], [0.1, 0.1], key=object())]
            )
        # Nothing of either failed batch landed.
        assert len(writable) == 8
        writable.insert_many(good)
        assert len(writable) == 11
        writable.close()


class TestColumnarFileWrites:
    """The v3 (columnar leaf pages) write path: mutations decolumnarize
    the touched leaves in memory, the file format stays sticky-v3, and
    the crash harness holds over columnar files exactly as over v2."""

    def _columnar_saved(self, path, base, d):
        from repro.gausstree.bulkload import bulk_load

        tree = bulk_load(base)
        tree.save(path, version=3)
        return tree

    def test_writable_v3_file_round_trips_and_stays_v3(self, tmp_path):
        path = str(tmp_path / "col.gauss")
        rng = np.random.default_rng(41)
        d = 3
        base = make_vectors(rng, 60, d, "base")
        self._columnar_saved(path, base, d)
        assert read_header(path)["version"] == 3

        extra = make_vectors(rng, 15, d, "extra")
        writable = GaussTree.open(path, writable=True)
        try:
            writable.insert_many(extra)
            for v in base[:10]:
                assert writable.delete(v)
            writable.flush()
            survivors = base[10:] + extra
            replay = GaussTree(dims=d, degree=3)
            replay.extend(survivors)
            assert_same_answers(replay, writable, d, seed=42)
        finally:
            writable.close()
        # Sticky format: checkpointing a v3 file writes v3 pages back.
        assert read_header(path)["version"] == 3
        reopened = GaussTree.open(path)
        try:
            assert sorted(v.key for v in reopened) == sorted(
                v.key for v in survivors
            )
            replay = GaussTree(dims=d, degree=3)
            replay.extend(survivors)
            assert_same_answers(replay, reopened, d, seed=43)
        finally:
            reopened.close()

    @given(
        d=st.integers(1, 3),
        seed=st.integers(0, 10_000),
        n_base=st.integers(6, 40),
        n_extra=st.integers(1, 15),
        budget=st.integers(1, 250_000),
    )
    @settings(deadline=None)
    def test_crash_on_columnar_v3_file_recovers_durable_prefix(
        self, tmp_path_factory, d, seed, n_base, n_extra, budget
    ):
        path = str(tmp_path_factory.mktemp("crash-v3") / "col.gauss")
        rng = np.random.default_rng(seed)
        base = make_vectors(rng, n_base, d, "base")
        extra = make_vectors(rng, n_extra, d, "extra")
        self._columnar_saved(path, base, d)
        assert read_header(path)["version"] == 3

        injector = FaultInjector(budget)
        completed = 0
        writable = None
        try:
            writable = GaussTree.open(
                path, writable=True, file_factory=injector.open
            )
            for v in extra:
                writable.insert(v)
                completed += 1
            writable.flush()
        except InjectedCrash:
            pass
        finally:
            if writable is not None:
                writable.close(checkpoint=False)

        recovered = GaussTree.open(path)
        try:
            assert read_header(path)["version"] == 3
            assert len(recovered) == n_base + completed
            recovered.check_invariants()
            assert sorted(v.key for v in recovered) == sorted(
                v.key for v in base + extra[:completed]
            )
            replay = GaussTree(dims=d, degree=3)
            replay.extend(base + extra[:completed])
            assert_same_answers(replay, recovered, d, seed + 1)
        finally:
            recovered.close()
