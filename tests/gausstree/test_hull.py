"""Property tests of Lemmas 2 and 3: the conservative node bounds.

The crucial contract: for every Gaussian whose parameters lie inside a
node's parameter rectangle and every evaluation point, the upper hull
dominates the density and the lower bound stays below it. We check the
collapsed closed form against brute-force grid maximisation and against
the paper's literal seven-case formula.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.gaussian import SQRT_TWO_PI_E, pdf
from repro.core.joint import SigmaRule, combine_sigma, log_joint_density
from repro.core.pfv import PFV
from repro.gausstree.bounds import ParameterRect
from repro.gausstree.hull import (
    hull_lower,
    hull_upper,
    log_hull_lower,
    log_hull_upper,
    node_log_bounds,
    node_log_bounds_batch,
    node_log_upper,
)


@st.composite
def box_and_x(draw):
    mu_lo = draw(st.floats(-5, 5))
    mu_hi = mu_lo + draw(st.floats(0, 4))
    sigma_lo = draw(st.floats(0.05, 2.0))
    sigma_hi = sigma_lo + draw(st.floats(0, 3.0))
    x = draw(st.floats(-15, 15))
    return mu_lo, mu_hi, sigma_lo, sigma_hi, x


def grid_extrema(mu_lo, mu_hi, sigma_lo, sigma_hi, x, steps=60):
    mus = np.linspace(mu_lo, mu_hi, steps)
    sigmas = np.linspace(sigma_lo, sigma_hi, steps)
    values = [pdf(x, m, s) for m in mus for s in sigmas]
    return min(values), max(values)


def paper_seven_cases(mu_lo, mu_hi, sigma_lo, sigma_hi, x):
    """Lemma 2 exactly as printed, case by case."""
    if x < mu_lo - sigma_hi:
        return pdf(x, mu_lo, sigma_hi)  # (I)
    if x < mu_lo - sigma_lo:
        return pdf(x, mu_lo, mu_lo - x)  # (II)
    if x < mu_lo:
        return pdf(x, mu_lo, sigma_lo)  # (III)
    if x < mu_hi:
        return pdf(x, x, sigma_lo)  # (IV)
    if x < mu_hi + sigma_lo:
        return pdf(x, mu_hi, sigma_lo)  # (V)
    if x < mu_hi + sigma_hi:
        return pdf(x, mu_hi, x - mu_hi)  # (VI)
    return pdf(x, mu_hi, sigma_hi)  # (VII)


class TestUpperHull:
    @given(box_and_x())
    @settings(max_examples=150, deadline=None)
    def test_matches_papers_piecewise_formula(self, params):
        mu_lo, mu_hi, sigma_lo, sigma_hi, x = params
        ours = float(hull_upper(x, mu_lo, mu_hi, sigma_lo, sigma_hi))
        paper = paper_seven_cases(mu_lo, mu_hi, sigma_lo, sigma_hi, x)
        assert ours == pytest.approx(paper, rel=1e-12)

    @given(box_and_x())
    @settings(max_examples=100, deadline=None)
    def test_dominates_grid_maximum(self, params):
        mu_lo, mu_hi, sigma_lo, sigma_hi, x = params
        _, grid_max = grid_extrema(mu_lo, mu_hi, sigma_lo, sigma_hi, x)
        ours = float(hull_upper(x, mu_lo, mu_hi, sigma_lo, sigma_hi))
        assert ours >= grid_max - 1e-12

    @given(box_and_x())
    @settings(max_examples=60, deadline=None)
    def test_tight_at_attained_maximum(self, params):
        # The hull is the *exact* maximum, not just an upper bound: the
        # grid maximum converges to it from below.
        mu_lo, mu_hi, sigma_lo, sigma_hi, x = params
        _, grid_max = grid_extrema(mu_lo, mu_hi, sigma_lo, sigma_hi, x, steps=150)
        ours = float(hull_upper(x, mu_lo, mu_hi, sigma_lo, sigma_hi))
        assert grid_max <= ours * (1 + 1e-12) + 1e-15
        assert ours <= grid_max * 1.2 + 1e-12

    def test_case_ii_closed_form(self):
        # Inside case (II) the hull is 1 / (sqrt(2 pi e) * (mu_lo - x)).
        mu_lo, sigma_lo, sigma_hi = 0.0, 0.5, 2.0
        x = -1.0  # mu_lo - sigma_hi <= x < mu_lo - sigma_lo
        value = float(hull_upper(x, mu_lo, 1.0, sigma_lo, sigma_hi))
        assert value == pytest.approx(1.0 / (SQRT_TWO_PI_E * 1.0))

    def test_plateau_inside_mu_interval(self):
        values = hull_upper(
            np.array([0.2, 0.5, 0.8]), 0.0, 1.0, 0.3, 0.6
        )
        assert values[0] == pytest.approx(values[1]) == pytest.approx(values[2])

    def test_continuity_at_case_boundaries(self):
        mu_lo, mu_hi, sigma_lo, sigma_hi = 0.0, 1.0, 0.3, 0.9
        boundaries = [
            mu_lo - sigma_hi,
            mu_lo - sigma_lo,
            mu_lo,
            mu_hi,
            mu_hi + sigma_lo,
            mu_hi + sigma_hi,
        ]
        for b in boundaries:
            left = float(hull_upper(b - 1e-9, mu_lo, mu_hi, sigma_lo, sigma_hi))
            right = float(hull_upper(b + 1e-9, mu_lo, mu_hi, sigma_lo, sigma_hi))
            assert left == pytest.approx(right, rel=1e-5)

    def test_log_form_consistent(self):
        x = np.linspace(-3, 3, 20)
        lin = hull_upper(x, 0.0, 1.0, 0.2, 0.8)
        log = log_hull_upper(x, 0.0, 1.0, 0.2, 0.8)
        assert np.allclose(np.log(lin), log)

    def test_rejects_nonpositive_sigma_lo(self):
        with pytest.raises(ValueError):
            log_hull_upper(0.0, 0.0, 1.0, 0.0, 1.0)

    def test_degenerate_point_box_equals_pdf(self):
        # A single-pfv node: the hull is just that pfv's Gaussian.
        for x in (-1.0, 0.25, 2.0):
            assert float(hull_upper(x, 0.3, 0.3, 0.7, 0.7)) == pytest.approx(
                pdf(x, 0.3, 0.7)
            )


class TestLowerBound:
    @given(box_and_x())
    @settings(max_examples=100, deadline=None)
    def test_below_grid_minimum(self, params):
        mu_lo, mu_hi, sigma_lo, sigma_hi, x = params
        grid_min, _ = grid_extrema(mu_lo, mu_hi, sigma_lo, sigma_hi, x)
        ours = float(hull_lower(x, mu_lo, mu_hi, sigma_lo, sigma_hi))
        assert ours <= grid_min + 1e-12

    @given(box_and_x())
    @settings(max_examples=100, deadline=None)
    def test_equals_minimum_over_corners(self, params):
        mu_lo, mu_hi, sigma_lo, sigma_hi, x = params
        corners = [
            pdf(x, m, s)
            for m in (mu_lo, mu_hi)
            for s in (sigma_lo, sigma_hi)
        ]
        ours = float(hull_lower(x, mu_lo, mu_hi, sigma_lo, sigma_hi))
        assert ours == pytest.approx(min(corners), rel=1e-12)

    @given(box_and_x())
    @settings(max_examples=60, deadline=None)
    def test_lower_never_exceeds_upper(self, params):
        mu_lo, mu_hi, sigma_lo, sigma_hi, x = params
        lo = float(log_hull_lower(x, mu_lo, mu_hi, sigma_lo, sigma_hi))
        hi = float(log_hull_upper(x, mu_lo, mu_hi, sigma_lo, sigma_hi))
        assert lo <= hi + 1e-12


@st.composite
def node_with_members(draw):
    d = draw(st.integers(1, 3))
    count = draw(st.integers(2, 8))
    seed = draw(st.integers(0, 100_000))
    rng = np.random.default_rng(seed)
    members = [
        PFV(rng.uniform(-2, 2, d), rng.uniform(0.05, 1.0, d), key=i)
        for i in range(count)
    ]
    q = PFV(rng.uniform(-3, 3, d), rng.uniform(0.05, 1.0, d))
    return ParameterRect.of_vectors(members), members, q


class TestNodeBounds:
    """The query-facing contract: node bounds sandwich every member's
    Lemma-1 joint density (Section 5.2's shifted-sigma evaluation)."""

    @given(node_with_members())
    @settings(max_examples=80, deadline=None)
    def test_bounds_sandwich_member_densities(self, case):
        rect, members, q = case
        for rule in SigmaRule:
            lo, hi = node_log_bounds(rect, q, rule)
            for v in members:
                dens = log_joint_density(v, q, rule)
                assert lo - 1e-9 <= dens <= hi + 1e-9

    @given(node_with_members())
    @settings(max_examples=40, deadline=None)
    def test_node_log_upper_matches_bounds(self, case):
        rect, _, q = case
        _, hi = node_log_bounds(rect, q)
        assert node_log_upper(rect, q) == pytest.approx(hi)

    @given(node_with_members())
    @settings(max_examples=40, deadline=None)
    def test_shifted_sigma_equivalence(self, case):
        # The query bound equals the plain hull evaluated with the
        # query-combined sigma interval at mu_q — Section 5.2's identity.
        rect, _, q = case
        s_lo = combine_sigma(rect.sigma_lo, q.sigma)
        s_hi = combine_sigma(rect.sigma_hi, q.sigma)
        direct = float(
            np.sum(log_hull_upper(q.mu, rect.mu_lo, rect.mu_hi, s_lo, s_hi))
        )
        _, hi = node_log_bounds(rect, q)
        assert direct == pytest.approx(hi)

    def test_batch_matches_scalar(self, rng):
        d, k = 3, 5
        rects = []
        for _ in range(k):
            mu = rng.uniform(-1, 1, (4, d))
            sg = rng.uniform(0.05, 0.8, (4, d))
            rects.append(
                ParameterRect(mu.min(0), mu.max(0), sg.min(0), sg.max(0))
            )
        q = PFV(rng.uniform(-1, 1, d), rng.uniform(0.05, 0.8, d))
        stacked = (
            np.vstack([r.mu_lo for r in rects]),
            np.vstack([r.mu_hi for r in rects]),
            np.vstack([r.sigma_lo for r in rects]),
            np.vstack([r.sigma_hi for r in rects]),
        )
        lows, highs = node_log_bounds_batch(*stacked, q)
        for i, r in enumerate(rects):
            lo, hi = node_log_bounds(r, q)
            assert lows[i] == pytest.approx(lo)
            assert highs[i] == pytest.approx(hi)

    def test_containment_monotonicity(self, rng):
        # A sub-rectangle has tighter bounds than its parent.
        parent = ParameterRect(
            np.array([0.0]), np.array([2.0]), np.array([0.1]), np.array([1.0])
        )
        child = ParameterRect(
            np.array([0.5]), np.array([1.5]), np.array([0.2]), np.array([0.8])
        )
        q = PFV([0.7], [0.3])
        plo, phi = node_log_bounds(parent, q)
        clo, chi = node_log_bounds(child, q)
        assert chi <= phi + 1e-12
        assert clo >= plo - 1e-12
