"""Unit tests for parameter-space rectangles (Definition 4's MBRs)."""

import math

import numpy as np
import pytest

from repro.core.pfv import PFV
from repro.gausstree.bounds import ParameterRect


def rect(mu_lo, mu_hi, sg_lo, sg_hi):
    return ParameterRect(
        np.atleast_1d(np.asarray(mu_lo, float)),
        np.atleast_1d(np.asarray(mu_hi, float)),
        np.atleast_1d(np.asarray(sg_lo, float)),
        np.atleast_1d(np.asarray(sg_hi, float)),
    )


class TestConstruction:
    def test_of_vector_is_point_box(self):
        v = PFV([1.0, 2.0], [0.1, 0.2])
        r = ParameterRect.of_vector(v)
        assert np.array_equal(r.mu_lo, r.mu_hi)
        assert np.array_equal(r.sigma_lo, r.sigma_hi)
        assert r.contains_vector(v)

    def test_of_vectors_tight(self):
        vs = [PFV([0.0], [0.5]), PFV([2.0], [0.1]), PFV([1.0], [0.9])]
        r = ParameterRect.of_vectors(vs)
        assert r.mu_lo[0] == 0.0 and r.mu_hi[0] == 2.0
        assert r.sigma_lo[0] == 0.1 and r.sigma_hi[0] == 0.9

    def test_of_vectors_empty(self):
        with pytest.raises(ValueError):
            ParameterRect.of_vectors([])

    def test_of_rects(self):
        a = rect(0.0, 1.0, 0.1, 0.2)
        b = rect(0.5, 2.0, 0.05, 0.15)
        u = ParameterRect.of_rects([a, b])
        assert u.mu_lo[0] == 0.0 and u.mu_hi[0] == 2.0
        assert u.sigma_lo[0] == 0.05 and u.sigma_hi[0] == 0.2

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            rect(1.0, 0.0, 0.1, 0.2)
        with pytest.raises(ValueError):
            rect(0.0, 1.0, 0.3, 0.2)
        with pytest.raises(ValueError):
            rect(0.0, 1.0, 0.0, 0.2)  # sigma must stay positive

    def test_flat_bounds_roundtrip(self):
        r = rect([0.0, 1.0], [2.0, 3.0], [0.1, 0.2], [0.3, 0.4])
        back = ParameterRect.from_flat_bounds(r.as_flat_bounds())
        assert back == r

    def test_from_flat_bounds_validation(self):
        with pytest.raises(ValueError):
            ParameterRect.from_flat_bounds(np.zeros(5))


class TestGeometry:
    def test_containment(self):
        r = rect(0.0, 1.0, 0.1, 0.5)
        assert r.contains_vector(PFV([0.5], [0.3]))
        assert not r.contains_vector(PFV([1.5], [0.3]))
        assert not r.contains_vector(PFV([0.5], [0.6]))

    def test_contains_rect(self):
        outer = rect(0.0, 2.0, 0.1, 0.9)
        inner = rect(0.5, 1.5, 0.2, 0.8)
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)

    def test_extend_vector(self):
        r = rect(0.0, 1.0, 0.2, 0.4)
        r.extend_vector(PFV([2.0], [0.1]))
        assert r.mu_hi[0] == 2.0 and r.sigma_lo[0] == 0.1

    def test_union_vector_leaves_original(self):
        r = rect(0.0, 1.0, 0.2, 0.4)
        u = r.union_vector(PFV([-1.0], [0.3]))
        assert r.mu_lo[0] == 0.0
        assert u.mu_lo[0] == -1.0

    def test_extend_rect(self):
        r = rect(0.0, 1.0, 0.2, 0.4)
        r.extend_rect(rect(2.0, 3.0, 0.5, 0.6))
        assert r.mu_hi[0] == 3.0 and r.sigma_hi[0] == 0.6

    def test_volume_and_margin(self):
        r = rect([0.0, 0.0], [2.0, 1.0], [0.1, 0.1], [0.3, 0.6])
        assert r.volume() == pytest.approx(2.0 * 1.0 * 0.2 * 0.5)
        assert r.margin() == pytest.approx(2.0 + 1.0 + 0.2 + 0.5)

    def test_point_box_degenerate(self):
        r = ParameterRect.of_vector(PFV([1.0], [0.2]))
        assert r.volume() == 0.0
        assert r.margin() == 0.0

    def test_enlargement_zero_when_contained(self):
        r = rect(0.0, 1.0, 0.1, 0.5)
        d_vol, d_margin = r.enlargement_for_vector(PFV([0.5], [0.3]))
        assert d_vol == -math.inf and d_margin == 0.0

    def test_enlargement_positive_outside(self):
        r = rect(0.0, 1.0, 0.1, 0.5)
        d_vol, d_margin = r.enlargement_for_vector(PFV([3.0], [0.3]))
        # log of the true volume increase: (3 - 0) * 0.4 grown from 0.4.
        assert d_vol == pytest.approx(math.log(3.0 * 0.4 - 1.0 * 0.4))
        assert d_margin > 0.0

    def test_enlargement_margin_for_degenerate_box(self):
        # Volume stays 0 when extending a point box along one axis; the
        # margin must still discriminate.
        r = ParameterRect.of_vector(PFV([0.0], [0.2]))
        d_vol, d_margin = r.enlargement_for_vector(PFV([1.0], [0.2]))
        assert d_vol == -math.inf
        assert d_margin == pytest.approx(1.0)

    def test_log_volume_matches_volume_when_representable(self):
        r = rect([0.0, 0.0], [2.0, 1.0], [0.1, 0.1], [0.3, 0.6])
        assert r.log_volume() == pytest.approx(math.log(r.volume()))
        assert ParameterRect.of_vector(PFV([1.0], [0.2])).log_volume() == -math.inf

    def test_enlargement_discriminates_at_d27(self):
        # Regression: with 54 extents of ~1e-6 the linear-space volume is
        # (1e-6)**54 = 1e-324 -> 0.0, so both enlargements used to compare
        # equal (0.0) and steering collapsed onto the margin tie-breaker.
        d = 27
        ext = 1e-6
        near = ParameterRect(
            np.zeros(d), np.full(d, ext), np.full(d, 0.1), np.full(d, 0.1 + ext)
        )
        far = ParameterRect(
            np.full(d, 5.0),
            np.full(d, 5.0 + ext),
            np.full(d, 0.1),
            np.full(d, 0.1 + ext),
        )
        assert near.volume() == 0.0 and far.volume() == 0.0  # the old trap
        v = PFV(np.full(d, 2.0 * ext), np.full(d, 0.1 + 0.5 * ext))
        d_near, _ = near.enlargement_for_vector(v)
        d_far, _ = far.enlargement_for_vector(v)
        assert math.isfinite(d_near) and math.isfinite(d_far)
        # Growing the nearby box costs far less volume than dragging the
        # distant box across parameter space.
        assert d_near < d_far

    def test_copy_independent(self):
        r = rect(0.0, 1.0, 0.1, 0.5)
        c = r.copy()
        c.extend_vector(PFV([5.0], [0.3]))
        assert r.mu_hi[0] == 1.0

    def test_equality(self):
        assert rect(0, 1, 0.1, 0.2) == rect(0, 1, 0.1, 0.2)
        assert rect(0, 1, 0.1, 0.2) != rect(0, 2, 0.1, 0.2)
        assert rect(0, 1, 0.1, 0.2).__eq__("x") is NotImplemented
