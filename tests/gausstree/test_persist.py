"""Persistence round trips: save, reopen cold, answer identically.

The acceptance bar for the disk path: a tree saved and reopened in a
fresh :class:`~repro.storage.filestore.FilePageStore` must decode its
nodes from real page bytes and still produce the *same* MLIQ/TIQ matches,
posteriors (within 1e-9) and logical page-access counts as the in-memory
tree it was saved from.
"""

import math
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pfv import PFV
from repro.core.queries import MLIQuery, ThresholdQuery
from repro.gausstree.bulkload import bulk_load
from repro.gausstree.persist import read_header, save_tree
from repro.gausstree.tree import GaussTree
from repro.storage.buffer import BufferManager
from repro.storage.filestore import FilePageStore

from tests.conftest import make_random_db, make_random_query


def build_tree(db, degree=3, bulk=True):
    if bulk:
        return bulk_load(db.vectors, degree=degree, sigma_rule=db.sigma_rule)
    tree = GaussTree(dims=db.dims, degree=degree, sigma_rule=db.sigma_rule)
    tree.extend(db.vectors)
    return tree


class TestRoundTrip:
    @given(
        n=st.integers(2, 150),
        d=st.integers(1, 4),
        seed=st.integers(0, 1000),
        bulk=st.booleans(),
        k=st.integers(1, 8),
    )
    @settings(max_examples=25, deadline=None)
    def test_mliq_matches_in_memory_tree(self, tmp_path_factory, n, d, seed, bulk, k):
        path = str(tmp_path_factory.mktemp("idx") / "tree.gauss")
        db = make_random_db(n=n, d=d, seed=seed)
        tree = build_tree(db, bulk=bulk)
        tree.save(path)
        reopened = GaussTree.open(path)
        try:
            q = make_random_query(d=d, seed=seed + 1)
            mem, mem_stats = tree.mliq(MLIQuery(q, k))
            disk, disk_stats = reopened.mliq(MLIQuery(q, k))
            assert [m.key for m in mem] == [m.key for m in disk]
            for a, b in zip(mem, disk):
                assert b.probability == pytest.approx(a.probability, abs=1e-9)
                assert b.log_density == pytest.approx(a.log_density, abs=1e-9)
            assert disk_stats.pages_accessed == mem_stats.pages_accessed
            assert disk_stats.nodes_expanded == mem_stats.nodes_expanded
        finally:
            reopened.close()

    @given(
        n=st.integers(2, 120),
        d=st.integers(1, 3),
        seed=st.integers(0, 1000),
        p_theta=st.floats(0.01, 0.9),
    )
    @settings(max_examples=25, deadline=None)
    def test_tiq_matches_in_memory_tree(self, tmp_path_factory, n, d, seed, p_theta):
        path = str(tmp_path_factory.mktemp("idx") / "tree.gauss")
        db = make_random_db(n=n, d=d, seed=seed)
        tree = build_tree(db)
        tree.save(path)
        reopened = GaussTree.open(path)
        try:
            q = make_random_query(d=d, seed=seed + 2)
            mem, mem_stats = tree.tiq(ThresholdQuery(q, p_theta))
            disk, disk_stats = reopened.tiq(ThresholdQuery(q, p_theta))
            assert [m.key for m in mem] == [m.key for m in disk]
            for a, b in zip(mem, disk):
                assert b.probability == pytest.approx(a.probability, abs=1e-9)
            assert disk_stats.pages_accessed == mem_stats.pages_accessed
        finally:
            reopened.close()

    def test_structure_and_contents_survive(self, tmp_path):
        path = str(tmp_path / "tree.gauss")
        db = make_random_db(n=90, d=3, seed=5)
        tree = build_tree(db, bulk=False)
        tree.save(path)
        reopened = GaussTree.open(path)
        try:
            assert len(reopened) == len(tree)
            assert reopened.height == tree.height
            assert reopened.dims == tree.dims
            assert reopened.degree == tree.degree
            assert reopened.sigma_rule == tree.sigma_rule
            # Materializing the whole tree must reproduce every invariant
            # and the exact multiset of stored pfv.
            reopened.check_invariants()
            assert sorted(v.key for v in reopened) == sorted(
                v.key for v in tree
            )
            for mem_v, disk_v in zip(
                sorted(tree, key=lambda v: v.key),
                sorted(reopened, key=lambda v: v.key),
            ):
                assert np.array_equal(mem_v.mu, disk_v.mu)
                assert np.array_equal(mem_v.sigma, disk_v.sigma)
        finally:
            reopened.close()

    def test_nodes_decode_lazily_from_bytes(self, tmp_path):
        path = str(tmp_path / "tree.gauss")
        db = make_random_db(n=200, d=2, seed=9, sigma_low=0.01, sigma_high=0.05)
        tree = build_tree(db)
        tree.save(path)
        reopened = GaussTree.open(path)
        try:
            # Only the root is materialized after open.
            root = reopened.root
            assert root.is_materialized
            stubs = [c for c in root.children if not c.is_materialized]
            assert stubs, "children of the root must start as stubs"
            # A rank-only point query materializes some subtrees, not all.
            q = db[17]
            reopened.mliq(MLIQuery(q, 1), tolerance=0.25)
            remaining = [
                node
                for node in _iter_shallow(reopened.root)
                if not node.is_materialized
            ]
            assert remaining, "a 1-NN query should not touch every subtree"
        finally:
            reopened.close()

    def test_saving_opened_tree_onto_its_own_file(self, tmp_path):
        # The save must keep reading lazy leaf pages from the original
        # bytes while writing (temp file + rename), even when the target
        # is the very file backing the opened tree.
        path = str(tmp_path / "self.gauss")
        db = make_random_db(n=120, d=2, seed=27)
        tree = build_tree(db)
        tree.save(path)
        reopened = GaussTree.open(path)
        try:
            reopened.save(path)  # nothing materialized but the root
        finally:
            reopened.close()
        again = GaussTree.open(path)
        try:
            q = make_random_query(d=2, seed=28)
            mem, _ = tree.mliq(MLIQuery(q, 5))
            disk, _ = again.mliq(MLIQuery(q, 5))
            assert [m.key for m in mem] == [m.key for m in disk]
            again.check_invariants()
        finally:
            again.close()

    def test_empty_tree_round_trips(self, tmp_path):
        path = str(tmp_path / "empty.gauss")
        tree = GaussTree(dims=2, degree=3)
        tree.save(path)
        reopened = GaussTree.open(path)
        try:
            assert len(reopened) == 0
            matches, stats = reopened.mliq(MLIQuery(make_random_query(d=2), 1))
            assert matches == []
            assert stats.pages_accessed == 0
        finally:
            reopened.close()

    def test_mixed_key_types_round_trip(self, tmp_path):
        path = str(tmp_path / "keys.gauss")
        rng = np.random.default_rng(3)
        keys = ["alpha", 7, None, 2.5, True, ("img", 3), ("a", ("b", 1)), False]
        tree = GaussTree(dims=2, degree=3)
        for key in keys:
            tree.insert(PFV(rng.uniform(0, 1, 2), rng.uniform(0.1, 0.3, 2), key=key))
        tree.save(path)
        reopened = GaussTree.open(path)
        try:
            stored = [v.key for v in reopened]
            assert sorted(stored, key=repr) == sorted(keys, key=repr)
            # bool/int/float must keep their exact types.
            assert any(k is True for k in stored)
            assert any(type(k) is int and k == 7 for k in stored)
            assert any(type(k) is float and k == 2.5 for k in stored)
        finally:
            reopened.close()

    def test_tuple_keys_distinguish_element_types(self, tmp_path):
        # (1,), (True,) and (1.0,) hash equal as tuples; the key table
        # must still give each its own slot so the round trip preserves
        # the exact key objects.
        path = str(tmp_path / "tuples.gauss")
        rng = np.random.default_rng(8)
        keys = [(1,), (True,), (1.0,), ("x", 0), ("x", False)]
        tree = GaussTree(dims=2, degree=3)
        for key in keys:
            tree.insert(
                PFV(rng.uniform(0, 1, 2), rng.uniform(0.1, 0.3, 2), key=key)
            )
        tree.save(path)
        reopened = GaussTree.open(path)
        try:
            stored = [v.key for v in reopened]
            assert sorted(map(repr, stored)) == sorted(map(repr, keys))
            types = sorted(
                type(k[0]).__name__ for k in stored if len(k) == 1
            )
            assert types == ["bool", "float", "int"]
        finally:
            reopened.close()

    def test_unsupported_key_fails_cleanly(self, tmp_path):
        tree = GaussTree(dims=1, degree=2)
        tree.insert(PFV([0.5], [0.1], key=frozenset({1})))
        with pytest.raises(TypeError, match="cannot persist key"):
            tree.save(str(tmp_path / "bad.gauss"))

    def test_batch_queries_on_reopened_tree(self, tmp_path):
        path = str(tmp_path / "batch.gauss")
        db = make_random_db(n=150, d=3, seed=21)
        tree = build_tree(db)
        tree.save(path)
        reopened = GaussTree.open(path)
        try:
            queries = [
                MLIQuery(make_random_query(d=3, seed=500 + i), 3)
                for i in range(20)
            ]
            batch, _ = reopened.mliq_many(queries)
            for query, matches in zip(queries, batch):
                mem, _ = tree.mliq(query)
                assert [m.key for m in mem] == [m.key for m in matches]
                for a, b in zip(mem, matches):
                    assert b.probability == pytest.approx(
                        a.probability, abs=1e-9
                    )
        finally:
            reopened.close()


def _iter_shallow(node):
    """Iterate materialized parts of the tree without forcing stubs."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        if not current.is_leaf and current.is_materialized:
            stack.extend(current._children)


class TestFileFormat:
    def test_header_fields(self, tmp_path):
        path = str(tmp_path / "h.gauss")
        db = make_random_db(n=60, d=2, seed=1)
        tree = build_tree(db)
        tree.save(path)
        meta = read_header(path)
        assert meta["dims"] == 2
        assert meta["degree"] == tree.degree
        assert meta["n_objects"] == 60
        assert meta["height"] == tree.height
        assert meta["page_count"] == sum(1 for _ in tree.nodes())
        assert meta["page_size"] == tree.layout.page_size
        size = os.path.getsize(path)
        assert size == meta["key_table_offset"] + meta["key_table_bytes"]

    def test_rejects_garbage_file(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"not an index" * 10)
        with pytest.raises(ValueError, match="not a Gauss-tree index"):
            GaussTree.open(str(path))

    def test_rejects_truncated_file(self, tmp_path):
        path = tmp_path / "tiny.bin"
        path.write_bytes(b"GT")
        with pytest.raises(ValueError, match="not a Gauss-tree index"):
            GaussTree.open(str(path))

    def test_rejects_corrupt_header_geometry(self, tmp_path):
        import struct

        path = str(tmp_path / "corrupt.gauss")
        db = make_random_db(n=40, d=2, seed=4)
        build_tree(db).save(path)
        # Stomp page_count (offset: 8s+H+I+I+I+B+H+I = 28) with a huge
        # value; open must fail with a clear error, not allocate gigabytes
        # or die later with an opaque KeyError.
        with open(path, "r+b") as f:
            f.seek(28)
            f.write(struct.pack("<I", 0xFFFF_FFF0))
        with pytest.raises(ValueError, match="corrupt index header"):
            GaussTree.open(path)

    def test_degree_exceeding_layout_fails(self, tmp_path):
        db = make_random_db(n=10, d=2, seed=2)
        tree = GaussTree(dims=2, degree=500)  # 1000 leaf slots > 8K page
        tree.extend(db.vectors)
        with pytest.raises(ValueError, match="leaf entries"):
            save_tree(tree, str(tmp_path / "big.gauss"))

    def test_reopened_tree_is_read_only(self, tmp_path):
        path = str(tmp_path / "ro.gauss")
        db = make_random_db(n=30, d=2, seed=3)
        tree = build_tree(db)
        tree.save(path)
        reopened = GaussTree.open(path)
        try:
            with pytest.raises(RuntimeError, match="read-only"):
                reopened.insert(db[0])
            with pytest.raises(RuntimeError, match="read-only"):
                reopened.delete(db[0])
        finally:
            reopened.close()


class TestFilePageStore:
    def test_buffer_eviction_drops_frames(self, tmp_path):
        path = str(tmp_path / "evict.gauss")
        db = make_random_db(n=200, d=2, seed=11)
        tree = build_tree(db)
        tree.save(path)
        # A 4-page cache on a multi-level tree forces evictions mid-query.
        reopened = GaussTree.open(path, buffer=BufferManager(4))
        try:
            q = make_random_query(d=2, seed=12)
            mem, mem_stats = tree.mliq(MLIQuery(q, 5))
            disk, disk_stats = reopened.mliq(MLIQuery(q, 5))
            assert [m.key for m in mem] == [m.key for m in disk]
            assert disk_stats.pages_accessed == mem_stats.pages_accessed
            store = reopened.store
            assert store.buffer.stats.evictions > 0
            assert len(store._frames) <= 4
            assert set(store._frames) == set(
                pid for pid in store._frames if store.buffer.contains(pid)
            )
        finally:
            reopened.close()

    def test_sharing_a_buffer_across_stores_is_rejected(self, tmp_path):
        # Buffer residency is keyed by file-local page ids, so one buffer
        # serving two index files would count one file's cold reads as
        # the other's hits; the second open must fail fast instead.
        path_a = str(tmp_path / "a.gauss")
        path_b = str(tmp_path / "b.gauss")
        build_tree(make_random_db(n=120, d=2, seed=31)).save(path_a)
        build_tree(make_random_db(n=120, d=2, seed=32)).save(path_b)
        shared = BufferManager(2)
        tree_a = GaussTree.open(path_a, buffer=shared)
        try:
            with pytest.raises(ValueError, match="needs its own buffer"):
                GaussTree.open(path_b, buffer=shared)
        finally:
            tree_a.close()
        # Closed stores detach their listeners, so sequential reuse of
        # one buffer across open/close cycles stays legal and leak-free.
        assert shared._evict_listeners == []
        for _ in range(3):
            t = GaussTree.open(path_a, buffer=shared)
            t.close()
        assert shared._evict_listeners == []

    def test_cold_start_still_serves_reads(self, tmp_path):
        path = str(tmp_path / "cold.gauss")
        db = make_random_db(n=80, d=2, seed=13)
        tree = build_tree(db)
        tree.save(path)
        reopened = GaussTree.open(path)
        try:
            q = make_random_query(d=2, seed=14)
            first, warm_stats = reopened.mliq(MLIQuery(q, 3))
            reopened.store.cold_start()
            assert reopened.store._frames == {}
            second, cold_stats = reopened.mliq(MLIQuery(q, 3))
            assert [m.key for m in first] == [m.key for m in second]
            assert cold_stats.page_faults >= warm_stats.page_faults
            assert cold_stats.page_faults == cold_stats.pages_accessed
        finally:
            reopened.close()

    def test_unallocated_page_read_fails(self, tmp_path):
        path = str(tmp_path / "alloc.gauss")
        db = make_random_db(n=30, d=2, seed=15)
        build_tree(db).save(path)
        reopened = GaussTree.open(path)
        try:
            with pytest.raises(KeyError):
                reopened.store.read(10_000)
        finally:
            reopened.close()
