"""Batch query APIs must answer exactly like the one-at-a-time APIs."""

import numpy as np
import pytest

from repro.core.joint import (
    SigmaRule,
    log_joint_density_batch,
    log_joint_density_multi,
)
from repro.core.queries import MLIQuery, ThresholdQuery
from repro.core.pfv import PFV
from repro.gausstree.bulkload import bulk_load
from repro.gausstree.hull import node_log_bounds_batch, node_log_bounds_multi

from tests.conftest import make_random_db, make_random_query


@pytest.fixture(scope="module")
def db():
    return make_random_db(n=300, d=3, seed=42)


@pytest.fixture(scope="module")
def tree(db):
    return bulk_load(db.vectors, degree=4, sigma_rule=db.sigma_rule)


def queries(d, count, base_seed):
    return [make_random_query(d=d, seed=base_seed + i) for i in range(count)]


class TestMultiKernels:
    def test_density_multi_matches_batch_rows(self, db):
        qs = queries(3, 7, 900)
        q_mu = np.vstack([q.mu for q in qs])
        q_sigma = np.vstack([q.sigma for q in qs])
        for rule in SigmaRule:
            multi = log_joint_density_multi(
                db.mu_matrix, db.sigma_matrix, q_mu, q_sigma, rule
            )
            assert multi.shape == (7, len(db))
            for i, q in enumerate(qs):
                row = log_joint_density_batch(
                    db.mu_matrix, db.sigma_matrix, q, rule
                )
                np.testing.assert_allclose(multi[i], row, rtol=0, atol=1e-12)

    def test_density_multi_chunked_path(self, db):
        # Force the chunked branch: m * n * d big enough to split.
        rng = np.random.default_rng(0)
        n, d, m = 600, 7, 120  # n*d=4200 -> chunk ~59 < m
        mu = rng.uniform(0, 1, (n, d))
        sigma = rng.uniform(0.05, 0.4, (n, d))
        q_mu = rng.uniform(0, 1, (m, d))
        q_sigma = rng.uniform(0.05, 0.4, (m, d))
        multi = log_joint_density_multi(mu, sigma, q_mu, q_sigma)
        for i in (0, 59, 60, m - 1):
            row = log_joint_density_batch(
                mu, sigma, PFV(q_mu[i], q_sigma[i])
            )
            np.testing.assert_allclose(multi[i], row, rtol=0, atol=1e-12)

    def test_density_multi_validates_shapes(self, db):
        with pytest.raises(ValueError):
            log_joint_density_multi(
                db.mu_matrix, db.sigma_matrix, np.zeros((2, 5)), np.zeros((2, 5))
            )
        with pytest.raises(ValueError):
            log_joint_density_multi(
                db.mu_matrix, db.sigma_matrix, np.zeros((2, 3)), np.zeros((3, 3))
            )

    def test_bounds_multi_matches_batch_rows(self, tree):
        root = tree.root
        assert not root.is_leaf
        mu_lo, mu_hi, sg_lo, sg_hi = root.stacked_child_bounds()
        qs = queries(3, 5, 950)
        q_mu = np.vstack([q.mu for q in qs])
        q_sigma = np.vstack([q.sigma for q in qs])
        lows, highs = node_log_bounds_multi(
            mu_lo, mu_hi, sg_lo, sg_hi, q_mu, q_sigma
        )
        for i, q in enumerate(qs):
            lo, hi = node_log_bounds_batch(mu_lo, mu_hi, sg_lo, sg_hi, q)
            np.testing.assert_allclose(lows[i], lo, rtol=0, atol=1e-12)
            np.testing.assert_allclose(highs[i], hi, rtol=0, atol=1e-12)


class TestGaussTreeBatch:
    def test_mliq_many_matches_singles(self, tree):
        mliqs = [MLIQuery(q, 4) for q in queries(3, 25, 1000)]
        batch, stats = tree.mliq_many(mliqs)
        assert len(batch) == len(mliqs)
        total_pages = 0
        for query, matches in zip(mliqs, batch):
            single, single_stats = tree.mliq(query)
            assert [m.key for m in single] == [m.key for m in matches]
            for a, b in zip(single, matches):
                assert b.probability == pytest.approx(a.probability, abs=1e-12)
            total_pages += single_stats.pages_accessed
        # Aggregate logical accounting equals the sum of the singles.
        assert stats.pages_accessed == total_pages

    def test_tiq_many_matches_singles(self, tree):
        tiqs = [ThresholdQuery(q, 0.15) for q in queries(3, 20, 1100)]
        batch, _ = tree.tiq_many(tiqs)
        for query, matches in zip(tiqs, batch):
            single, _ = tree.tiq(query)
            assert [m.key for m in single] == [m.key for m in matches]
            for a, b in zip(single, matches):
                assert b.probability == pytest.approx(a.probability, abs=1e-12)

    def test_empty_batch(self, tree):
        results, stats = tree.mliq_many([])
        assert results == []
        assert stats.pages_accessed == 0

    def test_dimension_mismatch_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.mliq_many([MLIQuery(make_random_query(d=2), 1)])
