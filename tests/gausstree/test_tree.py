"""Structural tests of the Gauss-tree: insertion, splits, deletion.

Every mutation sequence must leave the tree satisfying all Definition-4
invariants (checked by ``GaussTree.check_invariants``), keep exactly the
inserted multiset of pfv, and stay queryable.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pfv import PFV
from repro.core.queries import MLIQuery
from repro.gausstree.tree import GaussTree
from repro.storage.layout import PageLayout


def random_vectors(n, d, seed):
    rng = np.random.default_rng(seed)
    return [
        PFV(rng.uniform(0, 1, d), rng.uniform(0.05, 0.5, d), key=i)
        for i in range(n)
    ]


class TestConstruction:
    def test_empty_tree(self):
        tree = GaussTree(dims=2, degree=3)
        assert len(tree) == 0
        assert tree.height == 1
        tree.check_invariants()

    def test_degree_from_layout(self):
        layout = PageLayout(dims=4, page_size=2048)
        tree = GaussTree(dims=4, layout=layout)
        assert tree.degree == min(layout.leaf_capacity // 2, layout.inner_capacity)

    def test_layout_dimension_mismatch(self):
        with pytest.raises(ValueError):
            GaussTree(dims=2, layout=PageLayout(dims=3))

    def test_degree_lower_bound(self):
        with pytest.raises(ValueError):
            GaussTree(dims=2, degree=1)

    def test_capacities(self):
        tree = GaussTree(dims=2, degree=5)
        assert tree.leaf_min == 5
        assert tree.leaf_max == 10
        assert tree.inner_min == 3
        assert tree.inner_max == 5


class TestInsertion:
    def test_insert_dimension_check(self):
        tree = GaussTree(dims=2, degree=3)
        with pytest.raises(ValueError):
            tree.insert(PFV([0.0], [1.0]))

    def test_root_leaf_grows_then_splits(self):
        tree = GaussTree(dims=1, degree=2)
        vectors = random_vectors(4, 1, 0)
        for v in vectors:
            tree.insert(v)
        assert tree.height == 1  # 4 <= 2M stays a root leaf
        tree.insert(PFV([0.5], [0.2], key=99))
        assert tree.height == 2  # overflow split
        tree.check_invariants()

    @pytest.mark.parametrize("n", [1, 7, 25, 120, 400])
    def test_invariants_after_bulk_insert(self, n):
        tree = GaussTree(dims=3, degree=3)
        vectors = random_vectors(n, 3, seed=n)
        tree.extend(vectors)
        tree.check_invariants()
        assert len(tree) == n
        assert sorted(v.key for v in tree) == sorted(v.key for v in vectors)

    def test_duplicate_parameter_points_supported(self):
        tree = GaussTree(dims=2, degree=2)
        for i in range(20):
            tree.insert(PFV([0.5, 0.5], [0.1, 0.1], key=i))
        tree.check_invariants()
        assert len(tree) == 20

    @given(
        n=st.integers(1, 80),
        d=st.integers(1, 4),
        degree=st.integers(2, 5),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_invariants_random(self, n, d, degree, seed):
        tree = GaussTree(dims=d, degree=degree)
        vectors = random_vectors(n, d, seed)
        tree.extend(vectors)
        tree.check_invariants()
        assert len(tree) == n

    def test_height_grows_logarithmically(self):
        tree = GaussTree(dims=2, degree=4)
        tree.extend(random_vectors(500, 2, 1))
        # 500 entries, leaves hold >= 4, fanout >= 2: height is modest.
        assert tree.height <= 8


class TestDeletion:
    def test_delete_returns_false_for_missing(self):
        tree = GaussTree(dims=2, degree=3)
        tree.extend(random_vectors(10, 2, 0))
        assert not tree.delete(PFV([9.0, 9.0], [0.5, 0.5], key="nope"))
        assert len(tree) == 10

    def test_delete_existing(self):
        vectors = random_vectors(30, 2, 3)
        tree = GaussTree(dims=2, degree=3)
        tree.extend(vectors)
        assert tree.delete(vectors[7])
        assert len(tree) == 29
        tree.check_invariants()
        assert vectors[7].key not in {v.key for v in tree}

    def test_delete_everything(self):
        vectors = random_vectors(40, 2, 5)
        tree = GaussTree(dims=2, degree=2)
        tree.extend(vectors)
        for v in vectors:
            assert tree.delete(v)
            tree.check_invariants()
        assert len(tree) == 0
        assert tree.height == 1

    def test_root_collapses_after_mass_delete(self):
        vectors = random_vectors(200, 2, 6)
        tree = GaussTree(dims=2, degree=3)
        tree.extend(vectors)
        tall = tree.height
        for v in vectors[:-5]:
            tree.delete(v)
        tree.check_invariants()
        assert tree.height < tall
        assert len(tree) == 5

    @given(
        seed=st.integers(0, 500),
        n=st.integers(10, 60),
        delete_ratio=st.floats(0.1, 0.9),
    )
    @settings(max_examples=25, deadline=None)
    def test_interleaved_insert_delete(self, seed, n, delete_ratio):
        rng = np.random.default_rng(seed)
        vectors = random_vectors(n, 2, seed)
        tree = GaussTree(dims=2, degree=2)
        alive: list[PFV] = []
        for v in vectors:
            tree.insert(v)
            alive.append(v)
            if rng.random() < delete_ratio and alive:
                victim = alive.pop(rng.integers(0, len(alive)))
                assert tree.delete(victim)
        tree.check_invariants()
        assert sorted(v.key for v in tree) == sorted(v.key for v in alive)

    def test_queries_after_deletes(self):
        vectors = random_vectors(60, 2, 8)
        tree = GaussTree(dims=2, degree=3)
        tree.extend(vectors)
        for v in vectors[::3]:
            tree.delete(v)
        q = PFV([0.5, 0.5], [0.2, 0.2])
        matches, _ = tree.mliq(MLIQuery(q, 3))
        assert len(matches) == 3
        remaining_keys = {v.key for v in tree}
        assert all(m.key in remaining_keys for m in matches)


class TestTraversalHelpers:
    def test_nodes_and_leaves_cover_everything(self):
        tree = GaussTree(dims=2, degree=3)
        tree.extend(random_vectors(100, 2, 9))
        leaf_entries = sum(leaf.count for leaf in tree.leaves())
        assert leaf_entries == 100
        assert sum(1 for _ in tree.nodes()) >= sum(1 for _ in tree.leaves())

    def test_repr(self):
        tree = GaussTree(dims=2, degree=3)
        assert "GaussTree" in repr(tree)
