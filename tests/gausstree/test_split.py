"""Tests of the median split strategy (Section 5.3)."""

import numpy as np
import pytest

from repro.core.pfv import PFV
from repro.gausstree.bounds import ParameterRect
from repro.gausstree.integral import log_split_quality
from repro.gausstree.node import LeafNode
from repro.gausstree.split import (
    split_children,
    split_entries,
    volume_split_quality,
)


def entries_grid(rng, n, d=2):
    return [
        PFV(rng.uniform(0, 1, d), rng.uniform(0.05, 0.5, d), key=i)
        for i in range(n)
    ]


class TestSplitEntries:
    def test_partition_is_exact(self, rng):
        entries = entries_grid(rng, 9)
        left, right, _ = split_entries(entries, min_fill=4)
        assert len(left) + len(right) == 9
        assert {id(e) for e in left} | {id(e) for e in right} == {
            id(e) for e in entries
        }

    def test_respects_min_fill(self, rng):
        entries = entries_grid(rng, 9)
        left, right, _ = split_entries(entries, min_fill=4)
        assert len(left) >= 4 and len(right) >= 4

    def test_too_few_items(self, rng):
        with pytest.raises(ValueError, match="cannot split"):
            split_entries(entries_grid(rng, 5), min_fill=4)

    def test_separates_sigma_regimes(self):
        # A node with two sharply different sigma populations at the same
        # location must split in sigma (the paper's headline heuristic).
        precise = [PFV([0.5], [0.01 + 0.001 * i], key=i) for i in range(5)]
        vague = [PFV([0.5], [1.0 + 0.1 * i], key=10 + i) for i in range(5)]
        left, right, _ = split_entries(precise + vague, min_fill=5)
        left_keys = {e.key for e in left}
        assert left_keys in ({0, 1, 2, 3, 4}, {10, 11, 12, 13, 14})

    def test_separates_mu_when_sigma_uniformly_small(self):
        # With uniformly tiny sigmas, the integral criterion must cut the
        # long mu axis.
        cluster_a = [PFV([0.0 + 0.01 * i], [0.01], key=i) for i in range(5)]
        cluster_b = [PFV([5.0 + 0.01 * i], [0.01], key=10 + i) for i in range(5)]
        left, right, _ = split_entries(cluster_a + cluster_b, min_fill=5)
        left_mus = sorted(e.mu[0] for e in left)
        right_mus = sorted(e.mu[0] for e in right)
        assert max(left_mus) < min(right_mus) or max(right_mus) < min(left_mus)

    def test_score_is_log_of_integral_sum(self, rng):
        entries = entries_grid(rng, 8)
        left, right, score = split_entries(entries, min_fill=4)
        expected = np.logaddexp(
            log_split_quality(ParameterRect.of_vectors(left)),
            log_split_quality(ParameterRect.of_vectors(right)),
        )
        assert score == pytest.approx(float(expected))

    def test_chooses_minimum_over_all_axes(self, rng):
        # Exhaustively re-evaluate every axis median split and check the
        # returned score is minimal.
        entries = entries_grid(rng, 10, d=2)
        _, _, score = split_entries(entries, min_fill=5)
        d = 2
        best = np.inf
        for axis in range(2 * d):
            key = (
                (lambda e: e.mu[axis])
                if axis < d
                else (lambda e: e.sigma[axis - d])
            )
            ordered = sorted(entries, key=key)
            l, r = ordered[:5], ordered[5:]
            s = np.logaddexp(
                log_split_quality(ParameterRect.of_vectors(l)),
                log_split_quality(ParameterRect.of_vectors(r)),
            )
            best = min(best, float(s))
        assert score == pytest.approx(best)


class TestSplitChildren:
    def make_leaf(self, rng, center, sigma_level, page_id):
        leaf = LeafNode(page_id)
        for k in range(3):
            leaf.add(
                PFV(
                    center + rng.uniform(-0.05, 0.05, 2),
                    np.full(2, sigma_level) * rng.uniform(0.9, 1.1),
                    key=(page_id, k),
                )
            )
        return leaf

    def test_children_split_respects_min_fill(self, rng):
        leaves = [
            self.make_leaf(rng, rng.uniform(0, 1, 2), 0.1, i) for i in range(7)
        ]
        left, right, _ = split_children(leaves, min_fill=3)
        assert len(left) + len(right) == 7
        assert len(left) >= 3 and len(right) >= 3

    def test_groups_by_sigma_level(self, rng):
        precise = [self.make_leaf(rng, np.array([0.5, 0.5]), 0.01, i) for i in range(3)]
        vague = [self.make_leaf(rng, np.array([0.5, 0.5]), 2.0, 10 + i) for i in range(3)]
        left, right, _ = split_children(precise + vague, min_fill=3)
        left_ids = {n.page_id for n in left}
        assert left_ids in ({0, 1, 2}, {10, 11, 12})


class TestVolumeQuality:
    def test_orders_by_volume(self, rng):
        small = ParameterRect(
            np.array([0.0]), np.array([0.1]), np.array([0.1]), np.array([0.2])
        )
        big = ParameterRect(
            np.array([0.0]), np.array([5.0]), np.array([0.1]), np.array([2.0])
        )
        assert volume_split_quality(small) < volume_split_quality(big)

    def test_degenerate_boxes_still_ordered(self):
        point = ParameterRect.of_vector(PFV([0.0], [0.1]))
        line = ParameterRect(
            np.array([0.0]), np.array([1.0]), np.array([0.1]), np.array([0.1])
        )
        assert volume_split_quality(point) < volume_split_quality(line)
