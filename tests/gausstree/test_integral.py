"""Tests of the hull integrals driving the split strategy (Section 5.3)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import integrate

from repro.core.gaussian import SQRT_TWO_PI_E
from repro.core.pfv import PFV
from repro.gausstree.bounds import ParameterRect
from repro.gausstree.hull import hull_upper
from repro.gausstree.integral import (
    CDF_POLY5,
    hull_integral,
    hull_integral_total,
    log_split_quality,
)


@st.composite
def boxes(draw):
    mu_lo = draw(st.floats(-3, 3))
    mu_hi = mu_lo + draw(st.floats(0, 3))
    sigma_lo = draw(st.floats(0.05, 1.5))
    sigma_hi = sigma_lo + draw(st.floats(0, 2.0))
    return mu_lo, mu_hi, sigma_lo, sigma_hi


class TestClosedForm:
    @given(boxes())
    @settings(max_examples=40, deadline=None)
    def test_total_matches_quadrature(self, box):
        mu_lo, mu_hi, sigma_lo, sigma_hi = box
        f = lambda x: float(hull_upper(x, mu_lo, mu_hi, sigma_lo, sigma_hi))
        span = mu_hi - mu_lo + 12 * sigma_hi
        numeric, _ = integrate.quad(
            f, mu_lo - span, mu_hi + span, limit=300
        )
        closed = hull_integral_total(mu_lo, mu_hi, sigma_lo, sigma_hi)
        assert closed == pytest.approx(numeric, rel=1e-5)

    def test_point_box_integrates_to_one(self):
        # A degenerate box is a single Gaussian: integral exactly 1.
        assert hull_integral_total(0.5, 0.5, 0.3, 0.3) == pytest.approx(1.0)

    def test_grows_with_mu_extent(self):
        a = hull_integral_total(0.0, 0.5, 0.2, 0.4)
        b = hull_integral_total(0.0, 1.5, 0.2, 0.4)
        assert b > a

    def test_grows_with_sigma_spread(self):
        a = hull_integral_total(0.0, 0.5, 0.2, 0.2)
        b = hull_integral_total(0.0, 0.5, 0.2, 2.0)
        assert b > a

    def test_mu_extent_expensive_when_sigma_small(self):
        # The paper's split intuition: at small sigma_lo, mu width costs a
        # lot; at large sigma_lo it costs little.
        narrow = hull_integral_total(0.0, 1.0, 0.05, 0.05) - hull_integral_total(
            0.0, 0.0, 0.05, 0.05
        )
        wide = hull_integral_total(0.0, 1.0, 1.0, 1.0) - hull_integral_total(
            0.0, 0.0, 1.0, 1.0
        )
        assert narrow > 10 * wide

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            hull_integral_total(1.0, 0.0, 0.1, 0.2)
        with pytest.raises(ValueError):
            hull_integral_total(0.0, 1.0, 0.2, 0.1)
        with pytest.raises(ValueError):
            hull_integral_total(0.0, 1.0, 0.0, 0.1)


class TestPartialIntegral:
    @given(boxes(), st.floats(-8, 8), st.floats(0, 8))
    @settings(max_examples=40, deadline=None)
    def test_matches_quadrature_on_interval(self, box, a, width):
        mu_lo, mu_hi, sigma_lo, sigma_hi = box
        b = a + width
        f = lambda x: float(hull_upper(x, mu_lo, mu_hi, sigma_lo, sigma_hi))
        numeric, _ = integrate.quad(f, a, b, limit=300)
        ours = hull_integral(a, b, mu_lo, mu_hi, sigma_lo, sigma_hi)
        assert ours == pytest.approx(numeric, rel=1e-5, abs=1e-9)

    @given(boxes())
    @settings(max_examples=40, deadline=None)
    def test_piecewise_sums_to_closed_form(self, box):
        mu_lo, mu_hi, sigma_lo, sigma_hi = box
        span = mu_hi - mu_lo + 40 * sigma_hi
        total = hull_integral(
            mu_lo - span, mu_hi + span, mu_lo, mu_hi, sigma_lo, sigma_hi
        )
        closed = hull_integral_total(mu_lo, mu_hi, sigma_lo, sigma_hi)
        # The window misses only far Gaussian tails.
        assert total == pytest.approx(closed, rel=1e-6)

    def test_case_ii_analytic_value(self):
        # Integrating exactly over case (II) gives (ln s_hi - ln s_lo) /
        # sqrt(2 pi e) — the formula derived in Section 5.3.
        mu_lo, mu_hi, sigma_lo, sigma_hi = 0.0, 1.0, 0.2, 1.3
        value = hull_integral(
            mu_lo - sigma_hi, mu_lo - sigma_lo, mu_lo, mu_hi, sigma_lo, sigma_hi
        )
        expected = (math.log(sigma_hi) - math.log(sigma_lo)) / SQRT_TWO_PI_E
        assert value == pytest.approx(expected, rel=1e-12)

    def test_empty_interval(self):
        assert hull_integral(2.0, 2.0, 0.0, 1.0, 0.2, 0.5) == 0.0
        assert hull_integral(3.0, 2.0, 0.0, 1.0, 0.2, 0.5) == 0.0

    def test_poly5_cdf_close_to_exact(self):
        args = (-5.0, 5.0, 0.0, 1.0, 0.2, 1.0)
        exact = hull_integral(*args)
        poly = hull_integral(*args, cdf=CDF_POLY5)
        assert poly == pytest.approx(exact, abs=1e-6)


class TestSplitQuality:
    def test_log_of_product_of_per_dim_integrals(self, rng):
        mu = rng.uniform(-1, 1, (6, 3))
        sg = rng.uniform(0.1, 0.9, (6, 3))
        rect = ParameterRect(mu.min(0), mu.max(0), sg.min(0), sg.max(0))
        expected = sum(
            math.log(
                hull_integral_total(
                    rect.mu_lo[i], rect.mu_hi[i], rect.sigma_lo[i], rect.sigma_hi[i]
                )
            )
            for i in range(3)
        )
        assert log_split_quality(rect) == pytest.approx(expected)

    def test_single_vector_rect_quality_zero(self):
        rect = ParameterRect.of_vector(PFV([0.1, 0.2], [0.3, 0.4]))
        # Point box: every per-dim integral is 1, so the log quality is 0.
        assert log_split_quality(rect) == pytest.approx(0.0)
