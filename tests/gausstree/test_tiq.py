"""Equivalence tests: Gauss-tree TIQ versus the sequential scan.

With the default tolerance 0 the tree TIQ keeps reading pages until every
candidate is decided against the threshold with the exact denominator
interval, so its answer *set* must equal the scan's exactly (Section
5.2.3).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pfv import PFV
from repro.core.queries import ThresholdQuery
from repro.core.scan import scan_tiq
from repro.gausstree.bulkload import bulk_load
from repro.gausstree.tree import GaussTree

from tests.conftest import make_random_db, make_random_query


def build_tree(db, degree=3, bulk=True):
    if bulk:
        return bulk_load(db.vectors, degree=degree, sigma_rule=db.sigma_rule)
    tree = GaussTree(dims=db.dims, degree=degree, sigma_rule=db.sigma_rule)
    tree.extend(db.vectors)
    return tree


class TestEquivalenceWithScan:
    @given(
        n=st.integers(2, 120),
        d=st.integers(1, 4),
        p_theta=st.floats(0.01, 0.95),
        seed=st.integers(0, 2000),
        bulk=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_same_answer_set(self, n, d, p_theta, seed, bulk):
        db = make_random_db(n=n, d=d, seed=seed)
        q = make_random_query(d=d, seed=seed + 1)
        tree = build_tree(db, bulk=bulk)
        expected = {m.key for m in scan_tiq(db, ThresholdQuery(q, p_theta))}
        got, _ = tree.tiq(ThresholdQuery(q, p_theta))
        assert {m.key for m in got} == expected

    @given(
        n=st.integers(2, 60),
        seed=st.integers(0, 500),
        p_theta=st.floats(0.05, 0.9),
    )
    @settings(max_examples=25, deadline=None)
    def test_probabilities_match_scan(self, n, seed, p_theta):
        db = make_random_db(n=n, d=2, seed=seed)
        q = make_random_query(d=2, seed=seed + 3)
        tree = build_tree(db)
        expected = {
            m.key: m.probability for m in scan_tiq(db, ThresholdQuery(q, p_theta))
        }
        got, _ = tree.tiq(ThresholdQuery(q, p_theta), probability_tolerance=1e-8)
        for m in got:
            assert m.probability == pytest.approx(expected[m.key], abs=1e-6)

    def test_threshold_zero_returns_all(self):
        db = make_random_db(n=40, d=2, seed=5)
        tree = build_tree(db)
        q = make_random_query(d=2, seed=6)
        got, _ = tree.tiq(ThresholdQuery(q, 0.0))
        assert len(got) == 40

    def test_results_sorted_by_probability(self):
        db = make_random_db(n=80, d=2, seed=7)
        tree = build_tree(db)
        q = make_random_query(d=2, seed=8)
        got, _ = tree.tiq(ThresholdQuery(q, 0.01))
        probs = [m.probability for m in got]
        assert probs == sorted(probs, reverse=True)

    def test_empty_tree(self):
        tree = GaussTree(dims=2, degree=3)
        got, stats = tree.tiq(ThresholdQuery(make_random_query(d=2), 0.5))
        assert got == []
        assert stats.pages_accessed == 0

    def test_far_query_returns_scan_result(self):
        db = make_random_db(n=50, d=3, seed=9, sigma_low=0.01, sigma_high=0.05)
        tree = build_tree(db)
        q = PFV([40.0, 40.0, 40.0], [0.02, 0.02, 0.02])
        expected = {m.key for m in scan_tiq(db, ThresholdQuery(q, 0.3))}
        got, _ = tree.tiq(ThresholdQuery(q, 0.3))
        assert {m.key for m in got} == expected

    def test_heteroscedastic_extremes(self):
        from repro.core.database import PFVDatabase

        rng = np.random.default_rng(31)
        vectors = [
            PFV(
                rng.uniform(0, 1, 2),
                np.exp(rng.uniform(np.log(1e-4), np.log(1.0), 2)),
                key=i,
            )
            for i in range(70)
        ]
        db = PFVDatabase(vectors)
        tree = build_tree(db)
        for qseed in range(5):
            qrng = np.random.default_rng(200 + qseed)
            q = PFV(
                qrng.uniform(0, 1, 2),
                np.exp(qrng.uniform(np.log(1e-4), np.log(1.0), 2)),
            )
            for p in (0.1, 0.5, 0.9):
                expected = {m.key for m in scan_tiq(db, ThresholdQuery(q, p))}
                got, _ = tree.tiq(ThresholdQuery(q, p))
                assert {m.key for m in got} == expected


class TestEfficiencyAndTolerance:
    def test_high_threshold_cheaper_than_zero_threshold(self):
        db = make_random_db(n=400, d=2, seed=13, sigma_low=0.01, sigma_high=0.1)
        tree = build_tree(db, degree=4)
        item = db[25]
        q = PFV(item.mu, item.sigma)
        _, hi = tree.tiq(ThresholdQuery(q, 0.9))
        _, zero = tree.tiq(ThresholdQuery(q, 0.0))
        assert hi.pages_accessed < zero.pages_accessed

    def test_tolerance_never_loses_clear_answers(self):
        db = make_random_db(n=100, d=2, seed=15)
        tree = build_tree(db)
        q = make_random_query(d=2, seed=16)
        exact, _ = tree.tiq(ThresholdQuery(q, 0.2), tolerance=0.0)
        loose, _ = tree.tiq(ThresholdQuery(q, 0.2), tolerance=0.05)
        exact_keys = {m.key for m in exact}
        loose_keys = {m.key for m in loose}
        # Only answers within the tolerance band may differ.
        for key in exact_keys ^ loose_keys:
            match = next(
                m for m in exact + loose if m.key == key
            )
            assert abs(match.probability - 0.2) < 0.06

    @pytest.mark.parametrize(
        "seed,d,p_theta,tol",
        [(47, 1, 0.1, 0.1), (81, 2, 0.2, 0.2), (135, 1, 0.1, 0.1)],
    )
    def test_tolerance_decides_against_widest_candidate(
        self, seed, d, p_theta, tol
    ):
        """Regression: posterior interval width grows with density, so the
        early-stop test must look at the *largest* undecided candidate.

        The old rule applied the width test to ``candidates[0]`` (the
        smallest density): once that narrow interval fit inside
        ``tolerance`` the traversal stopped, while high-density candidates
        still straddled the threshold with intervals far wider than
        ``tolerance`` — and got misclassified by their (still loose)
        midpoints. These seeds made the old rule drop objects whose exact
        posterior clears ``p_theta + tol``.
        """
        from repro.core.bayes import posteriors_from_log_densities
        from repro.core.database import PFVDatabase
        from repro.core.joint import log_joint_density_batch

        rng = np.random.default_rng(seed)
        vectors = [
            PFV(
                rng.uniform(0, 1, d),
                np.exp(rng.uniform(np.log(1e-3), np.log(1.0), d)),
                key=i,
            )
            for i in range(80)
        ]
        db = PFVDatabase(vectors)
        tree = bulk_load(db.vectors, degree=3, sigma_rule=db.sigma_rule)
        qrng = np.random.default_rng(10_000 + seed)
        q = PFV(
            qrng.uniform(0, 1, d),
            np.exp(qrng.uniform(np.log(1e-3), np.log(1.0), d)),
        )
        log_dens = log_joint_density_batch(
            db.mu_matrix, db.sigma_matrix, q, db.sigma_rule
        )
        exact = posteriors_from_log_densities(log_dens)
        got, _ = tree.tiq(ThresholdQuery(q, p_theta), tolerance=tol)
        got_keys = {m.key for m in got}
        clear_accepts = {
            db[i].key for i in range(len(db)) if exact[i] >= p_theta + tol
        }
        clear_rejects = {
            db[i].key for i in range(len(db)) if exact[i] < p_theta - tol
        }
        assert clear_accepts <= got_keys
        assert not (clear_rejects & got_keys)

    def test_stats_counters_populated(self):
        db = make_random_db(n=100, d=2, seed=17)
        tree = build_tree(db)
        q = make_random_query(d=2, seed=18)
        _, stats = tree.tiq(ThresholdQuery(q, 0.5))
        assert stats.nodes_expanded > 0
        assert stats.pages_accessed == stats.nodes_expanded
        assert stats.modeled_cpu_seconds > 0.0
