"""Tests of the bulk loader (quality-driven packing, Section 5.3 criterion)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pfv import PFV
from repro.core.queries import MLIQuery
from repro.gausstree.bulkload import (
    bulk_load,
    chunk_sizes,
    quality_groups,
    spatial_order,
)

from tests.conftest import make_random_db, make_random_query


class TestChunkSizes:
    def test_empty(self):
        assert chunk_sizes(0, 2, 4, 3) == []

    def test_single_undersized_chunk(self):
        assert chunk_sizes(3, 4, 8, 6) == [3]

    @given(
        n=st.integers(1, 5000),
        m=st.integers(2, 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_all_sizes_within_bounds(self, n, m):
        lo, hi, target = m, 2 * m, int(1.5 * m)
        sizes = chunk_sizes(n, lo, hi, target)
        assert sum(sizes) == n
        if n >= lo:
            assert all(lo <= s <= hi for s in sizes)

    def test_target_validation(self):
        with pytest.raises(ValueError):
            chunk_sizes(10, 4, 8, 9)


class TestSpatialOrder:
    def test_is_permutation(self, rng):
        coords = rng.uniform(0, 1, (50, 4))
        order = spatial_order(coords)
        assert sorted(order.tolist()) == list(range(50))

    def test_groups_near_points(self, rng):
        # Two well-separated blobs must occupy contiguous order ranges.
        a = rng.normal(0.0, 0.01, (20, 2))
        b = rng.normal(10.0, 0.01, (20, 2))
        coords = np.vstack([a, b])
        order = spatial_order(coords)
        first_half = set(order[:20].tolist())
        assert first_half in (set(range(20)), set(range(20, 40)))

    def test_identical_points(self):
        coords = np.ones((7, 3))
        assert sorted(spatial_order(coords).tolist()) == list(range(7))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            spatial_order(np.ones(5))


class TestQualityGroups:
    def test_partition_complete(self, rng):
        mu = rng.uniform(0, 1, (100, 3))
        sigma = rng.uniform(0.05, 0.5, (100, 3))
        groups = quality_groups(mu, sigma, max_group=8)
        all_idx = sorted(int(i) for g in groups for i in g)
        assert all_idx == list(range(100))

    def test_group_sizes_within_leaf_bounds(self, rng):
        mu = rng.uniform(0, 1, (137, 2))
        sigma = rng.uniform(0.05, 0.5, (137, 2))
        groups = quality_groups(mu, sigma, max_group=10)
        for g in groups:
            assert 5 <= len(g) <= 10  # [max_group/2, max_group]

    def test_small_input_single_group(self, rng):
        mu = rng.uniform(0, 1, (4, 2))
        sigma = rng.uniform(0.1, 0.2, (4, 2))
        groups = quality_groups(mu, sigma, max_group=8)
        assert len(groups) == 1

    def test_separates_sigma_bands(self, rng):
        # Same locations, two sigma regimes: groups must not mix regimes
        # (the quality criterion makes mixed groups expensive).
        n = 64
        mu = np.tile(rng.uniform(0, 1, (1, 2)), (n, 1))
        sigma = np.vstack(
            [np.full((n // 2, 2), 0.01), np.full((n // 2, 2), 2.0)]
        )
        sigma *= rng.uniform(0.9, 1.1, (n, 2))
        groups = quality_groups(mu, sigma, max_group=8)
        for g in groups:
            bands = {int(i) < n // 2 for i in g}
            assert len(bands) == 1, "a group mixes sigma regimes"

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            quality_groups(np.ones(5), np.ones(5), 4)
        with pytest.raises(ValueError):
            quality_groups(np.ones((5, 2)), np.ones((5, 2)), 1)


class TestBulkLoad:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bulk_load([])

    def test_small_collection_root_leaf(self, rng):
        vectors = [PFV(rng.uniform(0, 1, 2), rng.uniform(0.1, 0.3, 2), key=i) for i in range(5)]
        tree = bulk_load(vectors, degree=4)
        assert tree.height == 1
        assert len(tree) == 5
        tree.check_invariants()

    @pytest.mark.parametrize("ordering", ["quality", "spread"])
    @pytest.mark.parametrize("n", [17, 100, 777])
    def test_invariants_and_content(self, n, ordering):
        db = make_random_db(n=n, d=3, seed=n)
        tree = bulk_load(db.vectors, degree=4, ordering=ordering)
        tree.check_invariants()
        assert len(tree) == n
        assert sorted(v.key for v in tree) == list(range(n))

    def test_unknown_ordering(self, small_db):
        with pytest.raises(ValueError):
            bulk_load(small_db.vectors, ordering="hilbert")

    def test_fill_validation(self, small_db):
        with pytest.raises(ValueError):
            bulk_load(small_db.vectors, fill=0.0)

    def test_queries_match_insertion_built_tree(self):
        from repro.gausstree.tree import GaussTree

        db = make_random_db(n=150, d=3, seed=4)
        q = make_random_query(d=3, seed=5)
        bulk = bulk_load(db.vectors, degree=3)
        inserted = GaussTree(dims=3, degree=3)
        inserted.extend(db.vectors)
        bm, _ = bulk.mliq(MLIQuery(q, 5))
        im, _ = inserted.mliq(MLIQuery(q, 5))
        assert [m.key for m in bm] == [m.key for m in im]
        for a, b in zip(bm, im):
            assert a.probability == pytest.approx(b.probability, abs=1e-6)

    def test_insertion_still_works_after_bulk_load(self):
        db = make_random_db(n=60, d=2, seed=6)
        tree = bulk_load(db.vectors, degree=3)
        extra = PFV([0.5, 0.5], [0.1, 0.1], key="extra")
        tree.insert(extra)
        tree.check_invariants()
        assert len(tree) == 61

    def test_quality_ordering_beats_spread_on_mixed_sigmas(self):
        # The reason the quality loader exists: markedly fewer page reads
        # on heteroscedastic data (this is the ablation's headline, pinned
        # here at small scale so regressions surface in the unit tests).
        from repro.data.uncertainty import mixed_precision_sigmas
        from repro.data.synthetic import database_from_arrays

        rng = np.random.default_rng(11)
        n, d = 2000, 8
        mu = rng.uniform(0, 1, (n, d))
        sigma = mixed_precision_sigmas(rng, n, d, p_bad=0.25, good=(0.002, 0.01), bad=(0.1, 0.3))
        db = database_from_arrays(mu, sigma)
        quality = bulk_load(db.vectors, degree=8, ordering="quality")
        spread = bulk_load(db.vectors, degree=8, ordering="spread")

        def pages(tree):
            total = 0
            for seed in range(10):
                row = int(np.random.default_rng(seed).integers(0, n))
                v = db[row]
                q = PFV(
                    np.random.default_rng(seed + 1).normal(v.mu, v.sigma),
                    sigma[int(np.random.default_rng(seed + 2).integers(0, n))],
                )
                _, st = tree.mliq(MLIQuery(q, 1), tolerance=1.0)
                total += st.pages_accessed
            return total

        assert pages(quality) < pages(spread)
