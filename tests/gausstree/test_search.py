"""Unit tests of the shared search state (denominator bounds, rescaling)."""

import math

import numpy as np
import pytest

from repro.core.joint import log_joint_density
from repro.core.pfv import PFV
from repro.gausstree.bulkload import bulk_load
from repro.gausstree.search import SearchState
from repro.gausstree.tree import GaussTree

from tests.conftest import make_random_db, make_random_query


def drain(state):
    while state.has_active_nodes:
        state.pop_and_expand()


class TestDenominatorBounds:
    def test_bounds_bracket_true_denominator_at_every_step(self):
        db = make_random_db(n=100, d=2, seed=1)
        tree = bulk_load(db.vectors, degree=3)
        q = make_random_query(d=2, seed=2)
        true_total = sum(
            math.exp(log_joint_density(v, q, tree.sigma_rule) - 0.0)
            for v in db
        )
        state = SearchState(tree, q)
        while state.has_active_nodes:
            lo = state.denominator_low * math.exp(state.shift)
            hi = state.denominator_high
            hi = hi if math.isinf(hi) else hi * math.exp(state.shift)
            assert lo <= true_total * (1 + 1e-9)
            assert hi >= true_total * (1 - 1e-9)
            state.pop_and_expand()
        # Drained: the interval collapses onto the exact denominator.
        final = state.exact_sum * math.exp(state.shift)
        assert final == pytest.approx(true_total, rel=1e-9)
        assert state.denominator_low == pytest.approx(state.denominator_high)

    def test_interval_monotonically_tightens(self):
        db = make_random_db(n=150, d=2, seed=3)
        tree = bulk_load(db.vectors, degree=3)
        q = make_random_query(d=2, seed=4)
        state = SearchState(tree, q)
        prev_lo, prev_hi = state.denominator_low, state.denominator_high
        prev_shift = state.shift
        while state.has_active_nodes:
            state.pop_and_expand()
            if state.shift != prev_shift:
                # A rescale changes the unit; restart the comparison.
                prev_lo, prev_hi = state.denominator_low, state.denominator_high
                prev_shift = state.shift
                continue
            assert state.denominator_low >= prev_lo - 1e-12
            if not math.isinf(prev_hi):
                assert state.denominator_high <= prev_hi + 1e-9
            prev_lo, prev_hi = state.denominator_low, state.denominator_high

    def test_counts_match_tree(self):
        db = make_random_db(n=80, d=2, seed=5)
        tree = bulk_load(db.vectors, degree=3)
        q = make_random_query(d=2, seed=6)
        state = SearchState(tree, q)
        drain(state)
        assert state.objects_refined == 80
        assert state.nodes_expanded == sum(1 for _ in tree.nodes())

    def test_pop_order_non_increasing_upper(self):
        db = make_random_db(n=120, d=2, seed=7)
        tree = bulk_load(db.vectors, degree=3)
        q = make_random_query(d=2, seed=8)
        state = SearchState(tree, q)
        prev = math.inf
        while state.has_active_nodes:
            top = state.top_log_upper
            assert top <= prev + 1e-9
            prev = top
            state.pop_and_expand()


class TestRescaling:
    def test_far_query_triggers_rescale_without_degenerate_sums(self):
        # Tiny sigmas + a remote query: the root hull sits hundreds of
        # nats above every true density, which must force a rescale
        # instead of collapsing exact_sum to zero.
        db = make_random_db(n=100, d=3, seed=9, sigma_low=0.001, sigma_high=0.01)
        tree = bulk_load(db.vectors, degree=3)
        q = PFV([30.0, 30.0, 30.0], [0.001, 0.001, 0.001])
        state = SearchState(tree, q)
        initial_shift = state.shift
        drain(state)
        assert state.shift != initial_shift  # rescale happened
        assert state.exact_sum > 0.0

    def test_empty_tree_state(self):
        tree = GaussTree(dims=2, degree=3)
        q = make_random_query(d=2)
        state = SearchState(tree, q)
        assert not state.has_active_nodes
        assert state.top_log_upper == -math.inf

    def test_dimension_mismatch(self):
        tree = GaussTree(dims=2, degree=3)
        with pytest.raises(ValueError):
            SearchState(tree, PFV([0.0], [1.0]))

    def test_scaled_density_underflow_guard(self):
        db = make_random_db(n=20, d=2, seed=10)
        tree = bulk_load(db.vectors, degree=3)
        q = make_random_query(d=2, seed=11)
        state = SearchState(tree, q)
        assert state.scaled_density(state.shift - 1e6) == 0.0
        assert state.scaled_density(state.shift) == pytest.approx(1.0)
