"""Equivalence tests: Gauss-tree k-MLIQ versus the sequential scan.

The Gauss-tree is a filter that must never change the answer — for every
randomized database, query and k, the tree's ranking must equal the exact
scan's and the reported posteriors must agree within the requested
tolerance (Sections 5.2.1-5.2.2).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.joint import SigmaRule
from repro.core.pfv import PFV
from repro.core.queries import MLIQuery
from repro.core.scan import scan_mliq
from repro.gausstree.bulkload import bulk_load
from repro.gausstree.tree import GaussTree

from tests.conftest import make_random_db, make_random_query


def build_tree(db, degree=3, bulk=True, sigma_rule=SigmaRule.CONVOLUTION):
    if bulk:
        return bulk_load(db.vectors, degree=degree, sigma_rule=sigma_rule)
    tree = GaussTree(dims=db.dims, degree=degree, sigma_rule=sigma_rule)
    tree.extend(db.vectors)
    return tree


class TestEquivalenceWithScan:
    @given(
        n=st.integers(2, 120),
        d=st.integers(1, 4),
        k=st.integers(1, 8),
        seed=st.integers(0, 2000),
        bulk=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_same_ranking_and_probabilities(self, n, d, k, seed, bulk):
        db = make_random_db(n=n, d=d, seed=seed)
        q = make_random_query(d=d, seed=seed + 1)
        tree = build_tree(db, bulk=bulk)
        expected = scan_mliq(db, MLIQuery(q, k))
        got, stats = tree.mliq(MLIQuery(q, k), tolerance=1e-9)
        assert [m.key for m in got] == [m.key for m in expected]
        for a, b in zip(got, expected):
            assert a.probability == pytest.approx(b.probability, abs=1e-6)
            assert a.log_density == pytest.approx(b.log_density, rel=1e-9)
        assert stats.pages_accessed >= 1

    def test_paper_sigma_rule_consistency(self):
        db = make_random_db(n=60, d=2, seed=9)
        # Rebuild the database under the PAPER rule so scan and tree agree.
        from repro.core.database import PFVDatabase

        db_paper = PFVDatabase(db.vectors, sigma_rule=SigmaRule.PAPER)
        q = make_random_query(d=2, seed=10)
        tree = build_tree(db_paper, sigma_rule=SigmaRule.PAPER)
        expected = scan_mliq(db_paper, MLIQuery(q, 4))
        got, _ = tree.mliq(MLIQuery(q, 4))
        assert [m.key for m in got] == [m.key for m in expected]

    def test_k_exceeds_database(self):
        db = make_random_db(n=10, d=2, seed=3)
        tree = build_tree(db)
        q = make_random_query(d=2, seed=4)
        got, _ = tree.mliq(MLIQuery(q, 50))
        assert len(got) == 10

    def test_empty_tree(self):
        tree = GaussTree(dims=2, degree=3)
        got, stats = tree.mliq(MLIQuery(make_random_query(d=2), 3))
        assert got == []
        assert stats.pages_accessed == 0

    def test_far_query_does_not_break(self):
        # Every density underflows linearly; log space must still rank.
        db = make_random_db(n=50, d=3, seed=5, sigma_low=0.01, sigma_high=0.05)
        tree = build_tree(db)
        q = PFV([50.0, 50.0, 50.0], [0.01, 0.01, 0.01])
        expected = scan_mliq(db, MLIQuery(q, 3))
        got, _ = tree.mliq(MLIQuery(q, 3))
        assert [m.key for m in got] == [m.key for m in expected]
        for m in got:
            assert math.isfinite(m.log_density)
            assert 0.0 <= m.probability <= 1.0

    def test_heteroscedastic_extremes(self):
        # Sigma spans four orders of magnitude — the regime that forces
        # the search state to rescale its sums.
        rng = np.random.default_rng(17)
        from repro.core.database import PFVDatabase

        vectors = [
            PFV(
                rng.uniform(0, 1, 3),
                np.exp(rng.uniform(np.log(1e-4), np.log(1.0), 3)),
                key=i,
            )
            for i in range(80)
        ]
        db = PFVDatabase(vectors)
        tree = build_tree(db, degree=3)
        for qseed in range(5):
            qrng = np.random.default_rng(100 + qseed)
            q = PFV(
                qrng.uniform(0, 1, 3),
                np.exp(qrng.uniform(np.log(1e-4), np.log(1.0), 3)),
            )
            expected = scan_mliq(db, MLIQuery(q, 3))
            got, _ = tree.mliq(MLIQuery(q, 3))
            assert [m.key for m in got] == [m.key for m in expected]
            for a, b in zip(got, expected):
                assert a.probability == pytest.approx(b.probability, abs=1e-6)


class TestEfficiency:
    def test_reads_fewer_pages_than_full_traversal(self):
        # On a selective query the best-first search must prune; pure
        # ranking (tolerance=1) should touch well under half of the tree.
        db = make_random_db(n=600, d=2, seed=21, sigma_low=0.01, sigma_high=0.05)
        tree = build_tree(db, degree=4)
        total_pages = sum(1 for _ in tree.nodes())
        v = db[17]
        q = PFV(v.mu, v.sigma)  # re-observation of a stored object
        _, stats = tree.mliq(MLIQuery(q, 1), tolerance=1.0)
        assert stats.pages_accessed < total_pages / 2

    def test_tolerance_trades_pages_for_accuracy(self):
        db = make_random_db(n=500, d=3, seed=23)
        tree = build_tree(db, degree=4)
        q = make_random_query(d=3, seed=24)
        _, loose = tree.mliq(MLIQuery(q, 1), tolerance=0.5)
        _, tight = tree.mliq(MLIQuery(q, 1), tolerance=1e-9)
        assert loose.pages_accessed <= tight.pages_accessed

    def test_stats_counters_populated(self):
        db = make_random_db(n=100, d=2, seed=25)
        tree = build_tree(db)
        q = make_random_query(d=2, seed=26)
        _, stats = tree.mliq(MLIQuery(q, 2))
        assert stats.nodes_expanded > 0
        assert stats.objects_refined > 0
        assert stats.cpu_seconds > 0.0
        assert stats.modeled_cpu_seconds > 0.0
