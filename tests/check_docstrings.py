#!/usr/bin/env python
"""Docstring coverage gate for the snapshot-pinned public surface.

`tests/test_api_surface.py` pins the exported names and signatures of
``repro.engine``, ``repro.cluster`` and ``repro.serve``; this script
pins their
*documentation*: every pinned export, every public method it defines,
and both package docstrings must carry a docstring. CI runs it as a
dedicated step (``python tests/check_docstrings.py``), and it doubles
as a pytest test so the tier-1 suite enforces the same bar.

The walk is intentionally derived from the same `__all__` lists the
surface snapshot pins, so adding an export without documenting it fails
both gates in the same commit.
"""

from __future__ import annotations

import inspect
import os
import sys
import typing

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)


def _public_methods(cls) -> list[tuple[str, object]]:
    """Public callables/properties *defined by* ``cls`` (inherited
    members are the defining class's responsibility)."""
    members = []
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if callable(member) or isinstance(
            member, (property, staticmethod, classmethod)
        ):
            members.append((name, member))
    return members


def _has_doc(obj) -> bool:
    doc = inspect.getdoc(obj)
    return bool(doc and doc.strip())


def iter_surface():
    """Yield ``(qualified_name, object)`` for everything the gate covers."""
    import repro.cluster as cluster
    import repro.engine as engine
    import repro.obs as obs
    import repro.serve as serve

    for module in (engine, cluster, serve, obs):
        yield module.__name__, module
        for name in module.__all__:
            obj = getattr(module, name)
            qualname = f"{module.__name__}.{name}"
            yield qualname, obj
            if inspect.isclass(obj) and obj.__module__.startswith("repro"):
                for mname, member in _public_methods(obj):
                    yield f"{qualname}.{mname}", member


def missing_docstrings() -> list[str]:
    """Qualified names on the pinned surface that lack a docstring."""
    missing = []
    for qualname, obj in iter_surface():
        # Type unions (Query, Spec, ...) cannot carry a docstring of
        # their own; the defining module documents them.
        if typing.get_origin(obj) is typing.Union:
            continue
        # Data constants (tuples like PARTITION_POLICIES) cannot carry
        # their own docstring; the defining module documents them.
        if not (
            inspect.ismodule(obj)
            or inspect.isclass(obj)
            or callable(obj)
            or isinstance(obj, (property, staticmethod, classmethod))
        ):
            continue
        # Dataclass-generated __init__ etc. are covered by the class.
        if not _has_doc(obj):
            missing.append(qualname)
    return missing


def test_snapshot_surface_has_docstrings():
    """Tier-1 enforcement of the same gate CI runs as a script."""
    assert missing_docstrings() == []


def main() -> int:
    missing = missing_docstrings()
    total = sum(1 for _ in iter_surface())
    if missing:
        print(
            f"{len(missing)} of {total} pinned public names lack "
            "docstrings:"
        )
        for name in missing:
            print(f"  - {name}")
        return 1
    print(f"docstring coverage: {total}/{total} pinned public names ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
