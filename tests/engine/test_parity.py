"""Cross-backend parity: one query model, interchangeable access methods.

The paper's core claim, enforced as a property: for random databases and
random MLIQ/TIQ/Rank specs, every registered *exact* backend returns the
identical match set through ``Session.execute`` — the in-memory tree,
the disk-opened tree (a genuine save/open round trip per example, pages
decoded lazily from bytes) and the sequential scan. The X-tree backend
is excluded by design: its quantile-rectangle filter admits false
dismissals (it does not declare the ``"exact"`` capability, and the
planner flags it), so identical answer sets are exactly the property it
trades away.

Posterior *probabilities* must agree to tight tolerance as well; key
*order* may differ between backends only within density ties, so the
assertions compare sets plus per-key posteriors rather than sequences.
"""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.database import PFVDatabase
from repro.core.pfv import PFV
from repro.engine import (
    MLIQ,
    TIQ,
    ConsensusTopK,
    Delete,
    ExpectedRank,
    Insert,
    RankQuery,
    available_backends,
    connect,
    session_for,
)
from repro.gausstree.bulkload import bulk_load

EXACT_DB_BACKENDS = ("tree", "seqscan")


@st.composite
def parity_case(draw):
    d = draw(st.integers(1, 3))
    n = draw(st.integers(0, 28))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    db = PFVDatabase(
        [
            PFV(
                rng.uniform(0.0, 1.0, d),
                rng.uniform(0.05, 0.4, d),
                key=i,
            )
            for i in range(n)
        ]
    )
    q = PFV(rng.uniform(0.0, 1.0, d), rng.uniform(0.05, 0.4, d))
    kind = draw(st.sampled_from(["mliq", "tiq", "rank", "consensus", "erank"]))
    if kind == "mliq":
        spec = MLIQ(q, draw(st.integers(0, n + 3)))
    elif kind == "tiq":
        spec = TIQ(q, tau=draw(st.sampled_from([0.0, 0.05, 0.2, 0.5, 0.9])))
    elif kind == "consensus":
        spec = ConsensusTopK(q, draw(st.integers(0, n + 3)))
    elif kind == "erank":
        spec = ExpectedRank(q, draw(st.integers(0, n + 3)))
    else:
        spec = RankQuery(q, draw(st.integers(0, n + 3)))
    return db, spec


def _answer(session, spec):
    """Per-key (posterior, semantics score) — score is None for the
    plain MLIQ/TIQ/Rank kinds, so the same comparison covers all five."""
    rs = session.execute(spec)
    return {m.key: (m.probability, m.score) for m in rs.matches}


def _assert_close(backend, spec, got, reference, *, rel_tol, abs_tol):
    assert set(got) == set(reference), (
        f"{backend} answered keys {sorted(got)}, "
        f"reference answered {sorted(reference)} for {spec}"
    )
    for key, (p, score) in got.items():
        ref_p, ref_score = reference[key]
        assert math.isclose(p, ref_p, rel_tol=rel_tol, abs_tol=abs_tol), (
            f"{backend} posterior for {key}: {p} != {ref_p} for {spec}"
        )
        assert (score is None) == (ref_score is None), (
            f"{backend} score presence mismatch for {key} on {spec}"
        )
        if score is not None:
            assert math.isclose(
                score, ref_score, rel_tol=rel_tol, abs_tol=abs_tol
            ), (
                f"{backend} score for {key}: {score} != {ref_score} "
                f"for {spec}"
            )


@given(case=parity_case())
@settings(
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_every_exact_backend_returns_the_same_matches(case, tmp_path_factory):
    db, spec = case
    answers = {}
    for backend in EXACT_DB_BACKENDS:
        with connect(db, backend=backend) as session:
            answers[backend] = _answer(session, spec)
    bulk_answer = None
    if len(db) > 0:
        # The disk backend needs a saved index: full save/open round
        # trip, so parity also covers the lazy page-decoding path. The
        # same tree is saved in both disk formats — interleaved v2 and
        # columnar v3 — so parity covers both page decoders.
        tmp = tmp_path_factory.mktemp("parity")
        bulk = bulk_load(db.vectors, sigma_rule=db.sigma_rule)
        bulk_answer = _answer(session_for(bulk), spec)
        for version in (2, 3):
            path = str(tmp / f"idx.v{version}.gauss")
            bulk.save(path, version=version)
            with connect(path, backend="disk") as session:
                answers[f"disk-v{version}"] = _answer(session, spec)
    # The sharded fan-out must merge per-shard candidates into the same
    # global answer the single tree gives — including N=1 (degenerate
    # fan-out), shards left empty by the hash (n small vs N=3), and the
    # k==0 / k>n / empty-database edge cases normalised in the spec
    # table. Its posteriors renormalise against the cross-shard Bayes
    # denominator, so equality here is the distributed-merge proof.
    for n_shards in (1, 2, 3):
        with connect(
            db, backend="sharded", shards=n_shards, inner="tree"
        ) as session:
            answers[f"sharded-{n_shards}"] = _answer(session, spec)

    reference = answers.pop("seqscan")
    tree_reference = answers["tree"]
    for backend, got in answers.items():
        _assert_close(
            backend, spec, got, reference, rel_tol=1e-6, abs_tol=1e-9
        )
        if backend.startswith("sharded"):
            # The issue's acceptance bar: sharded(tree, N) within 1e-9
            # of the single tree backend — posteriors *and* the
            # consensus/expected-rank scores, match sets identical.
            _assert_close(
                backend, spec, got, tree_reference, rel_tol=0.0,
                abs_tol=1e-9,
            )
    if bulk_answer is not None:
        # Disk-format acceptance bar, *bit for bit*: the columnar v3
        # file, the interleaved v2 file and the in-memory bulk-loaded
        # tree share one structure, one traversal and one Lemma-1
        # kernel, so their posteriors must be float-identical — no
        # tolerance. (The cross-structure checks above keep their
        # tolerances: an insertion-built tree legitimately stops at a
        # different point inside the 1e-9 posterior interval.)
        assert answers["disk-v3"] == answers["disk-v2"] == bulk_answer


@st.composite
def interleaved_case(draw):
    """A random db plus a random interleaved Insert/Delete/query batch
    (queries sprinkled between write runs, including batched inserts)."""
    d = draw(st.integers(1, 3))
    n = draw(st.integers(0, 15))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)

    def fresh(tag, i):
        return PFV(
            rng.uniform(0.0, 1.0, d),
            rng.uniform(0.05, 0.4, d),
            key=(tag, i),
        )

    db = PFVDatabase([fresh("base", i) for i in range(n)])
    alive = list(db)
    specs = []
    ops = draw(st.lists(st.integers(0, 3), min_size=2, max_size=14))
    for i, op in enumerate(ops):
        q = PFV(rng.uniform(0.0, 1.0, d), rng.uniform(0.05, 0.4, d))
        if op == 0:  # insert (consecutive ones form a group-commit run)
            v = fresh("new", i)
            specs.append(Insert(v))
            alive.append(v)
        elif op == 1 and alive:  # delete something that exists
            specs.append(Delete(alive.pop(int(rng.integers(len(alive))))))
        elif op == 2:
            specs.append(MLIQ(q, draw(st.integers(0, n + 3))))
        else:
            specs.append(
                TIQ(q, tau=draw(st.sampled_from([0.0, 0.05, 0.2, 0.5])))
            )
    # Always end with a query so the final write run is observed.
    q = PFV(rng.uniform(0.0, 1.0, d), rng.uniform(0.05, 0.4, d))
    specs.append(MLIQ(q, n + 3))
    return db, specs


@given(case=interleaved_case())
@settings(deadline=None)
def test_interleaved_writes_and_queries_match_single_writable_tree(case):
    """The issue's write-router acceptance bar: an interleaved
    write+query batch through writable sharded(tree, N∈{1,2,3})
    sessions answers every query exactly like one writable tree —
    each query sees the writes that precede it in the batch, routed
    writes land on their owning shards, and posteriors renormalise
    against the cross-shard Bayes denominator (within 1e-9)."""
    db, specs = case
    with connect(db, backend="tree") as session:
        reference = session.execute_many(specs)
        reference_n = len(session)
    for n_shards in (1, 2, 3):
        for policy in ("hash", "round-robin"):
            with connect(
                db,
                backend="sharded",
                shards=n_shards,
                inner="tree",
                policy=policy,
                writable=True,
            ) as session:
                sharded = session.execute_many(specs)
                assert len(session) == reference_n
            label = f"sharded-{n_shards}/{policy}"
            for spec, ref_matches, got_matches in zip(
                specs, reference, sharded
            ):
                ref = {m.key: m.probability for m in ref_matches}
                got = {m.key: m.probability for m in got_matches}
                assert set(got) == set(ref), (label, spec, got, ref)
                for key, p in got.items():
                    assert math.isclose(
                        p, ref[key], rel_tol=0.0, abs_tol=1e-9
                    ), (label, spec, key, p, ref[key])


def test_registry_documents_exactness_split():
    names = available_backends()
    for required in ("tree", "disk", "seqscan", "xtree"):
        assert required in names
    # xtree is registered but advertises approximation, which is why the
    # parity property above excludes it.
    db = PFVDatabase(
        [PFV([0.1 * i, 0.2], [0.1, 0.1], key=i) for i in range(10)]
    )
    with connect(db, backend="xtree") as session:
        assert "exact" not in session.capabilities
    with connect(db, backend="tree") as session:
        assert "exact" in session.capabilities
