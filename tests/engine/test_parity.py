"""Cross-backend parity: one query model, interchangeable access methods.

The paper's core claim, enforced as a property: for random databases and
random MLIQ/TIQ/Rank specs, every registered *exact* backend returns the
identical match set through ``Session.execute`` — the in-memory tree,
the disk-opened tree (a genuine save/open round trip per example, pages
decoded lazily from bytes) and the sequential scan. The X-tree backend
is excluded by design: its quantile-rectangle filter admits false
dismissals (it does not declare the ``"exact"`` capability, and the
planner flags it), so identical answer sets are exactly the property it
trades away.

Posterior *probabilities* must agree to tight tolerance as well; key
*order* may differ between backends only within density ties, so the
assertions compare sets plus per-key posteriors rather than sequences.
"""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.database import PFVDatabase
from repro.core.pfv import PFV
from repro.engine import MLIQ, TIQ, RankQuery, available_backends, connect
from repro.gausstree.bulkload import bulk_load

EXACT_DB_BACKENDS = ("tree", "seqscan")


@st.composite
def parity_case(draw):
    d = draw(st.integers(1, 3))
    n = draw(st.integers(0, 28))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    db = PFVDatabase(
        [
            PFV(
                rng.uniform(0.0, 1.0, d),
                rng.uniform(0.05, 0.4, d),
                key=i,
            )
            for i in range(n)
        ]
    )
    q = PFV(rng.uniform(0.0, 1.0, d), rng.uniform(0.05, 0.4, d))
    kind = draw(st.sampled_from(["mliq", "tiq", "rank"]))
    if kind == "mliq":
        spec = MLIQ(q, draw(st.integers(0, n + 3)))
    elif kind == "tiq":
        spec = TIQ(q, tau=draw(st.sampled_from([0.0, 0.05, 0.2, 0.5, 0.9])))
    else:
        spec = RankQuery(q, draw(st.integers(0, n + 3)))
    return db, spec


def _answer(session, spec):
    rs = session.execute(spec)
    return {m.key: m.probability for m in rs.matches}


@given(case=parity_case())
@settings(
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_every_exact_backend_returns_the_same_matches(case, tmp_path_factory):
    db, spec = case
    answers = {}
    for backend in EXACT_DB_BACKENDS:
        with connect(db, backend=backend) as session:
            answers[backend] = _answer(session, spec)
    if len(db) > 0:
        # The disk backend needs a saved index: full save/open round
        # trip, so parity also covers the lazy page-decoding path.
        path = str(tmp_path_factory.mktemp("parity") / "idx.gauss")
        bulk_load(db.vectors, sigma_rule=db.sigma_rule).save(path)
        with connect(path, backend="disk") as session:
            answers["disk"] = _answer(session, spec)
    # The sharded fan-out must merge per-shard candidates into the same
    # global answer the single tree gives — including N=1 (degenerate
    # fan-out), shards left empty by the hash (n small vs N=3), and the
    # k==0 / k>n / empty-database edge cases normalised in the spec
    # table. Its posteriors renormalise against the cross-shard Bayes
    # denominator, so equality here is the distributed-merge proof.
    for n_shards in (1, 2, 3):
        with connect(
            db, backend="sharded", shards=n_shards, inner="tree"
        ) as session:
            answers[f"sharded-{n_shards}"] = _answer(session, spec)

    reference = answers.pop("seqscan")
    tree_reference = answers["tree"]
    for backend, got in answers.items():
        assert set(got) == set(reference), (
            f"{backend} answered keys {sorted(got)}, "
            f"seqscan answered {sorted(reference)} for {spec}"
        )
        for key, p in got.items():
            assert math.isclose(
                p, reference[key], rel_tol=1e-6, abs_tol=1e-9
            ), f"{backend} posterior for {key}: {p} != {reference[key]}"
        if backend.startswith("sharded"):
            # The issue's acceptance bar: sharded(tree, N) within 1e-9
            # of the single tree backend, match sets identical.
            for key, p in got.items():
                assert math.isclose(
                    p, tree_reference[key], rel_tol=0.0, abs_tol=1e-9
                ), (
                    f"{backend} posterior for {key}: {p} != "
                    f"{tree_reference[key]} (tree)"
                )


def test_registry_documents_exactness_split():
    names = available_backends()
    for required in ("tree", "disk", "seqscan", "xtree"):
        assert required in names
    # xtree is registered but advertises approximation, which is why the
    # parity property above excludes it.
    db = PFVDatabase(
        [PFV([0.1 * i, 0.2], [0.1, 0.1], key=i) for i in range(10)]
    )
    with connect(db, backend="xtree") as session:
        assert "exact" not in session.capabilities
    with connect(db, backend="tree") as session:
        assert "exact" in session.capabilities
