"""Brute-force oracles for the ranked semantics (consensus / expected rank).

The possible-worlds model behind :mod:`repro.engine.semantics` is small
enough to enumerate on tiny databases: a world fixes the true identity
``u`` with probability ``P(u | q)`` (the identification posterior), and
in that world the ranking is ``[u]`` followed by every other object in
density order. These tests compute consensus membership probabilities,
expected ranks and expected symmetric difference by summing over all
``n`` worlds explicitly, then assert the engine's closed-form scores
match within 1e-9 — on random databases via hypothesis and on the
spec-table edge cases (``k == 0``, ``k > n``, singleton, empty)
deterministically.
"""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.database import PFVDatabase
from repro.core.pfv import PFV
from repro.engine import MLIQ, ConsensusTopK, ExpectedRank, connect
from repro.engine.semantics import (
    consensus_scores,
    expected_rank_scores,
    expected_symmetric_difference,
)


def _random_db(rng, n, d):
    return PFVDatabase(
        [
            PFV(
                rng.uniform(0.0, 1.0, d),
                rng.uniform(0.05, 0.4, d),
                key=i,
            )
            for i in range(n)
        ]
    )


def _full_posterior(db, q):
    """Every object's match, in density order, posterior over the whole
    database (the world distribution the semantics are defined over)."""
    with connect(db, backend="seqscan") as session:
        return list(session.execute(MLIQ(q, len(db))).matches)


def _brute_worlds(matches, k):
    """Enumerate all worlds; returns per-key (membership, expected rank).

    World ``u`` (probability ``P(u)``) ranks ``u`` first, then every
    other object in density order, 0-based. Membership counts worlds
    whose top-``k`` prefix contains the object.
    """
    order = [m.key for m in matches]
    post = {m.key: m.probability for m in matches}
    member = {key: 0.0 for key in order}
    erank = {key: 0.0 for key in order}
    for u in order:
        pu = post[u]
        ranking = [u] + [v for v in order if v != u]
        for rank, v in enumerate(ranking):
            erank[v] += pu * rank
            if rank < k:
                member[v] += pu
    return member, erank


def _brute_expected_symmetric_difference(matches, answer_keys, k):
    """E[|S Δ top-k(world)|] by summing |S Δ prefix| over all worlds."""
    order = [m.key for m in matches]
    post = {m.key: m.probability for m in matches}
    s = set(answer_keys)
    total = 0.0
    for u in order:
        ranking = [u] + [v for v in order if v != u]
        world_topk = set(ranking[:k])
        total += post[u] * len(s ^ world_topk)
    return total


@st.composite
def oracle_case(draw):
    d = draw(st.integers(1, 3))
    n = draw(st.integers(1, 9))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    db = _random_db(rng, n, d)
    q = PFV(rng.uniform(0.0, 1.0, d), rng.uniform(0.05, 0.4, d))
    k = draw(st.integers(0, n + 2))
    return db, q, k


@given(case=oracle_case())
@settings(deadline=None)
def test_scores_match_world_enumeration(case):
    db, q, k = case
    matches = _full_posterior(db, q)
    member, erank = _brute_worlds(matches, k)
    for backend in ("tree", "seqscan"):
        with connect(db, backend=backend) as session:
            consensus = session.execute(ConsensusTopK(q, k)).matches
            expected = session.execute(ExpectedRank(q, k)).matches
        assert len(consensus) == min(k, len(db))
        assert len(expected) == min(k, len(db))
        for m in consensus:
            assert math.isclose(
                m.score, member[m.key], rel_tol=0.0, abs_tol=1e-9
            ), (backend, m.key, m.score, member[m.key])
        for m in expected:
            assert math.isclose(
                m.score, erank[m.key], rel_tol=0.0, abs_tol=1e-9
            ), (backend, m.key, m.score, erank[m.key])


@given(case=oracle_case())
@settings(deadline=None)
def test_answer_sets_are_optimal(case):
    """Consensus answers maximize total membership probability (the
    symmetric-difference-optimal set); expected-rank answers are the
    ``min(k, n)`` smallest expected ranks, ascending."""
    db, q, k = case
    matches = _full_posterior(db, q)
    member, erank = _brute_worlds(matches, k)
    with connect(db, backend="tree") as session:
        consensus = session.execute(ConsensusTopK(q, k)).matches
        expected = session.execute(ExpectedRank(q, k)).matches
    want = min(k, len(db))
    best_member = sum(sorted(member.values(), reverse=True)[:want])
    got_member = sum(member[m.key] for m in consensus)
    assert got_member >= best_member - 1e-9, (got_member, best_member)
    # Optimality equivalently: no other same-size set has smaller
    # expected symmetric difference from the random world top-k.
    got_sd = _brute_expected_symmetric_difference(
        matches, [m.key for m in consensus], k
    )
    best_keys = [
        key
        for key, _ in sorted(
            member.items(), key=lambda kv: kv[1], reverse=True
        )[:want]
    ]
    best_sd = _brute_expected_symmetric_difference(matches, best_keys, k)
    assert got_sd <= best_sd + 1e-9, (got_sd, best_sd)
    best_eranks = sorted(erank.values())[:want]
    got_eranks = [erank[m.key] for m in expected]
    assert got_eranks == sorted(got_eranks), "expected ranks not ascending"
    for got, best in zip(got_eranks, best_eranks):
        assert math.isclose(got, best, rel_tol=0.0, abs_tol=1e-9)


@given(case=oracle_case())
@settings(deadline=None)
def test_expected_symmetric_difference_matches_enumeration(case):
    db, q, k = case
    matches = _full_posterior(db, q)
    with connect(db, backend="tree") as session:
        scored = session.execute(ConsensusTopK(q, k)).matches
    got = expected_symmetric_difference(scored, k, len(db))
    brute = _brute_expected_symmetric_difference(
        matches, [m.key for m in scored], k
    )
    assert math.isclose(got, brute, rel_tol=0.0, abs_tol=1e-9), (got, brute)


def test_edge_cases():
    rng = np.random.default_rng(11)
    db = _random_db(rng, 5, 2)
    q = PFV([0.5, 0.5], [0.2, 0.2])
    with connect(db, backend="tree") as session:
        # k == 0: empty answer for both semantics.
        assert session.execute(ConsensusTopK(q, 0)).matches == []
        assert session.execute(ExpectedRank(q, 0)).matches == []
        # k > n: every object comes back, scored.
        all_c = session.execute(ConsensusTopK(q, 50)).matches
        all_e = session.execute(ExpectedRank(q, 50)).matches
        assert len(all_c) == len(all_e) == 5
        member, erank = _brute_worlds(_full_posterior(db, q), 50)
        for m in all_c:
            # k >= n: every world's top-k holds every object.
            assert math.isclose(m.score, 1.0, abs_tol=1e-9)
            assert math.isclose(m.score, member[m.key], abs_tol=1e-9)
        for m in all_e:
            assert math.isclose(m.score, erank[m.key], abs_tol=1e-9)
    # Empty database: clean empties whatever k.
    with connect(PFVDatabase([]), backend="tree") as session:
        assert session.execute(ConsensusTopK(q, 3)).matches == []
        assert session.execute(ExpectedRank(q, 3)).matches == []
    # Singleton: the only object is in every world's top-1 (membership
    # 1.0) and always ranks first (expected rank 0.0).
    solo = PFVDatabase([PFV([0.5, 0.5], [0.2, 0.2], key="only")])
    with connect(solo, backend="tree") as session:
        (m,) = session.execute(ConsensusTopK(q, 1)).matches
        assert math.isclose(m.score, 1.0, abs_tol=1e-12)
        (m,) = session.execute(ExpectedRank(q, 1)).matches
        assert math.isclose(m.score, 0.0, abs_tol=1e-12)


def test_tied_densities_share_prefix_stats():
    """Objects at identical density are one tie group: the closed forms
    must use the group's (r, M), not the arbitrary sort position —
    tie-broken orderings would otherwise give tied objects different
    scores for the same evidence."""
    vecs = [
        PFV([0.0, 0.0], [0.2, 0.2], key="a"),
        PFV([0.0, 0.0], [0.2, 0.2], key="b"),
        PFV([3.0, 3.0], [0.2, 0.2], key="far"),
    ]
    q = PFV([0.0, 0.0], [0.2, 0.2])
    with connect(PFVDatabase(vecs), backend="tree") as session:
        consensus = session.execute(ConsensusTopK(q, 1)).matches
        expected = session.execute(ExpectedRank(q, 3)).matches
    scores = {m.key: m.score for m in expected}
    # a and b tie in density and posterior, so their scores agree.
    assert math.isclose(scores["a"], scores["b"], rel_tol=0.0, abs_tol=1e-12)
    # Tie group at r=0, M=0: ER = (1 - P) * 1.
    post = {m.key: m.probability for m in expected}
    for key in ("a", "b"):
        assert math.isclose(
            scores[key], 1.0 - post[key], rel_tol=0.0, abs_tol=1e-12
        )
    # Consensus boundary (k=1, tie group of two at r=0): membership is
    # P(v) + M(v) capped at 1.0 — here M is the group's (0.0), so the
    # single returned object scores its own posterior... plus nothing.
    (m,) = consensus
    assert m.key in ("a", "b")
    assert math.isclose(m.score, post[m.key], rel_tol=0.0, abs_tol=1e-12)


def test_pure_functions_reject_foreign_specs():
    q = PFV([0.0], [0.2])
    assert consensus_scores([], 3) == []
    assert expected_rank_scores([]) == []
    try:
        from repro.engine.semantics import score_ranked

        score_ranked(MLIQ(q, 1), [])
    except TypeError:
        pass
    else:  # pragma: no cover
        raise AssertionError("score_ranked accepted a non-ranked spec")
