"""The unified session API: connect, execute, explain, capabilities.

Behavioral contract of ``repro.engine``: every backend answers the same
specs with the same ResultSet shape, the normalised edge-case semantics
hold on all of them, rank queries lower to MLIQ + mass cut, plans
describe execution without running it, and the legacy per-method entry
points still work but warn.
"""

import warnings

import numpy as np
import pytest

import repro
from repro.baselines.seqscan import SequentialScanIndex
from repro.core.database import PFVDatabase
from repro.core.pfv import PFV
from repro.core.queries import MLIQuery, ThresholdQuery
from repro.engine import (
    MLIQ,
    TIQ,
    CapabilityError,
    RankQuery,
    available_backends,
    connect,
    register_backend,
    session_for,
)
from repro.gausstree.bulkload import bulk_load

from tests.conftest import make_random_db, make_random_query

EXACT_BACKENDS = ("tree", "seqscan")


@pytest.fixture(scope="module")
def db():
    return make_random_db(n=90, d=3, seed=11)


@pytest.fixture(scope="module")
def q():
    return make_random_query(d=3, seed=12)


class TestSpecs:
    def test_mliq_accepts_k_zero_rejects_negative(self, q):
        assert MLIQ(q, 0).k == 0
        with pytest.raises(ValueError):
            MLIQ(q, -1)

    def test_tiq_validates_tau_and_eps(self, q):
        with pytest.raises(ValueError):
            TIQ(q, tau=1.5)
        with pytest.raises(ValueError):
            TIQ(q, tau=0.5, eps=-0.1)

    def test_rank_validates_min_mass(self, q):
        with pytest.raises(ValueError):
            RankQuery(q, 3, min_mass=0.0)
        assert RankQuery(q, 3, min_mass=1.0).min_mass == 1.0

    def test_non_spec_rejected_by_execute(self, db, q):
        with connect(db, backend="seqscan") as s:
            with pytest.raises(TypeError):
                s.execute(MLIQuery(q, 3))  # legacy spec, not an engine spec


class TestExecute:
    @pytest.mark.parametrize("backend", EXACT_BACKENDS)
    def test_mliq_matches_reference_scan(self, db, q, backend):
        from repro.core.scan import scan_mliq

        with connect(db, backend=backend) as s:
            rs = s.execute(MLIQ(q, 7))
        want = [m.key for m in scan_mliq(db, MLIQuery(q, 7))]
        assert [m.key for m in rs.matches] == want
        assert rs.backend == backend
        assert rs.stats.pages_accessed > 0

    @pytest.mark.parametrize("backend", EXACT_BACKENDS)
    def test_tiq_matches_reference_scan(self, db, q, backend):
        from repro.core.scan import scan_tiq

        with connect(db, backend=backend) as s:
            rs = s.execute(TIQ(q, tau=0.05))
        want = [m.key for m in scan_tiq(db, ThresholdQuery(q, 0.05))]
        assert [m.key for m in rs.matches] == want

    def test_rank_is_mliq_plus_mass_cut(self, db, q):
        with connect(db, backend="seqscan") as s:
            full = s.execute(MLIQ(q, 20)).matches
            ranked = s.execute(RankQuery(q, 20, min_mass=0.9)).matches
        # A prefix of the MLIQ ranking, cut where cumulative mass >= 0.9.
        assert [m.key for m in ranked] == [m.key for m in full[: len(ranked)]]
        mass = sum(m.probability for m in ranked)
        assert mass >= 0.9 or len(ranked) == 20
        if len(ranked) > 1:
            assert sum(m.probability for m in ranked[:-1]) < 0.9

    def test_execute_many_mixed_kinds_in_input_order(self, db, q):
        q2 = make_random_query(d=3, seed=77)
        specs = [MLIQ(q, 3), TIQ(q2, 0.01), RankQuery(q, 5), MLIQ(q2, 1)]
        with connect(db, backend="tree") as s:
            rs = s.execute_many(specs)
            singles = [s.execute(spec)[0] for spec in specs]
        assert len(rs) == 4
        for got, want in zip(rs, singles):
            assert [m.key for m in got] == [m.key for m in want]
        assert rs.queries == tuple(specs)

    def test_resultset_shape(self, db, q):
        with connect(db, backend="seqscan") as s:
            rs = s.execute_many([MLIQ(q, 2), MLIQ(q, 3)])
        assert len(rs) == 2 and len(rs[1]) == 3
        assert rs.keys() == [[m.key for m in per] for per in rs]
        with pytest.raises(ValueError):
            _ = rs.matches  # multi-query: must index per query
        cum = rs.cumulative_probability(1)
        assert cum == sorted(cum) and len(cum) == 3


class TestEdgeSemantics:
    """The normalised table of repro.engine.spec, on every backend."""

    @pytest.mark.parametrize("backend", ("tree", "seqscan", "xtree"))
    def test_k_zero_and_k_beyond_n(self, db, q, backend):
        with connect(db, backend=backend) as s:
            assert s.execute(MLIQ(q, 0)).matches == []
            got = s.execute(MLIQ(q, len(db) + 50)).matches
            assert 0 < len(got) <= len(db)
            if "exact" in s.capabilities:
                assert len(got) == len(db)

    @pytest.mark.parametrize("backend", ("tree", "seqscan", "xtree"))
    def test_empty_database(self, q, backend):
        with connect(PFVDatabase(), backend=backend) as s:
            assert len(s) == 0
            assert s.execute(MLIQ(q, 5)).matches == []
            assert s.execute(TIQ(q, 0.2)).matches == []
            assert s.execute(RankQuery(q, 3, min_mass=0.5)).matches == []

    def test_tau_zero_returns_full_ranked_database(self, db, q):
        for backend in EXACT_BACKENDS:
            with connect(db, backend=backend) as s:
                assert len(s.execute(TIQ(q, tau=0.0)).matches) == len(db)

    def test_empty_tree_session_promotes_on_insert(self, q):
        s = connect([], backend="tree")
        assert s.writable and len(s) == 0
        s.insert(PFV([0.5, 0.5, 0.5], [0.1, 0.1, 0.1], key="first"))
        assert len(s) == 1
        assert s.execute(MLIQ(q, 1)).keys() == [["first"]]

    def test_empty_tree_promotion_keeps_sigma_rule(self):
        from repro.core.joint import SigmaRule

        src = PFVDatabase(sigma_rule=SigmaRule.PAPER)
        s = connect(src, backend="tree")
        assert s.database().sigma_rule is SigmaRule.PAPER
        s.insert(PFV([0.5, 0.5], [0.1, 0.1], key="first"))
        assert s.database().sigma_rule is SigmaRule.PAPER


class TestSources:
    def test_iterable_source(self, db, q):
        with connect(list(db.vectors), backend="tree") as s:
            assert len(s) == len(db)

    def test_disk_roundtrip_and_any_backend_on_a_path(self, tmp_path, db, q):
        path = str(tmp_path / "idx.gauss")
        bulk_load(db.vectors, sigma_rule=db.sigma_rule).save(path)
        answers = {}
        for backend in ("disk", "tree", "seqscan"):
            with connect(path, backend=backend) as s:
                answers[backend] = {
                    m.key for m in s.execute(MLIQ(q, 5)).matches
                }
        assert answers["disk"] == answers["tree"] == answers["seqscan"]

    def test_auto_picks_disk_for_paths_tree_for_data(self, tmp_path, db):
        path = str(tmp_path / "idx.gauss")
        bulk_load(db.vectors, sigma_rule=db.sigma_rule).save(path)
        with connect(path) as s:
            assert s.backend_name == "disk"
        with connect(db) as s:
            assert s.backend_name == "tree"

    def test_disk_needs_a_path(self, db):
        with pytest.raises(TypeError):
            connect(db, backend="disk")

    def test_unknown_backend(self, db):
        with pytest.raises(ValueError, match="unknown backend"):
            connect(db, backend="btree")

    def test_unknown_options_rejected_by_every_factory(self, db):
        for backend in ("tree", "seqscan", "xtree"):
            with pytest.raises(TypeError):
                connect(db, backend=backend, not_an_option=1)

    def test_read_only_open_rejects_auto_checkpoint(self, tmp_path, db):
        from repro.gausstree.tree import GaussTree

        path = str(tmp_path / "ro.gauss")
        bulk_load(db.vectors, sigma_rule=db.sigma_rule).save(path)
        with pytest.raises(ValueError, match="writable"):
            GaussTree.open(path, auto_checkpoint_bytes=1 << 20)

    def test_writable_disk_session(self, tmp_path, db, q):
        path = str(tmp_path / "w.gauss")
        bulk_load(db.vectors, sigma_rule=db.sigma_rule).save(path)
        with connect(path, writable=True, auto_checkpoint_bytes=1 << 20) as s:
            assert s.backend_name == "disk-writable" and s.writable
            v = PFV([0.5] * 3, [0.1] * 3, key="added")
            s.insert(v)
            assert s.delete(v) is True
            s.flush()
        with connect(path) as s:
            assert len(s) == len(db)

    def test_writable_rejected_on_read_only_backends(self, db):
        with pytest.raises(CapabilityError):
            connect(db, backend="seqscan", writable=True)
        with connect(db, backend="seqscan") as s:
            with pytest.raises(CapabilityError):
                s.insert(PFV([0.5] * 3, [0.1] * 3, key="x"))


class TestExplain:
    def test_plan_fields_and_describe(self, db, q):
        with connect(db, backend="seqscan") as s:
            plan = s.explain([MLIQ(q, 3)] * 4)
        assert plan.backend == "seqscan"
        assert plan.strategy == "batched"
        assert plan.n_queries == 4
        assert plan.estimated_pages > 0
        assert plan.estimated_io_seconds > 0
        text = plan.describe()
        assert "seqscan" in text and "page accesses" in text

    def test_estimate_tracks_costmodel(self, db, q):
        # The seqscan MLIQ estimate is exactly the cost model's price of
        # one sequential pass — the planner quotes storage/costmodel.
        with connect(db, backend="seqscan") as s:
            plan = s.explain(MLIQ(q, 3))
            backend = s._backend
            pages = backend.index.file_pages
            assert plan.estimated_pages == pages
            assert plan.estimated_io_seconds == pytest.approx(
                backend.store.cost_model.sequential_read_seconds(pages)
            )

    def test_explain_accepts_any_iterable_like_execute_many(self, db, q):
        with connect(db, backend="seqscan") as s:
            from_list = s.explain([MLIQ(q, 2), MLIQ(q, 3)])
            from_gen = s.explain(MLIQ(q, k) for k in (2, 3))
        assert from_gen == from_list

    def test_rank_lowering_is_reported(self, db, q):
        with connect(db, backend="tree") as s:
            plan = s.explain(RankQuery(q, 5, min_mass=0.9))
        assert any("rank" in step for step in plan.lowering)

    def test_approximate_backend_is_flagged(self, db, q):
        with connect(db, backend="xtree") as s:
            plan = s.explain(MLIQ(q, 3))
        assert any("approximate" in note for note in plan.notes)


class TestSessionLifecycle:
    def test_closed_session_refuses_work(self, db, q):
        s = connect(db, backend="seqscan")
        s.close()
        s.close()  # idempotent
        with pytest.raises(RuntimeError):
            s.execute(MLIQ(q, 1))

    def test_session_for_adopts_existing_indexes(self, db, q):
        tree = bulk_load(db.vectors, sigma_rule=db.sigma_rule)
        scan = SequentialScanIndex(db)
        a = session_for(tree).execute(MLIQ(q, 5)).keys()
        b = session_for(scan).execute(MLIQ(q, 5)).keys()
        assert a == b

    def test_session_for_wraps_legacy_duck_typed_methods(self, db, q):
        class Legacy:
            def mliq(self, query):
                return SequentialScanIndex(db)._mliq_impl(query)

        s = session_for(Legacy(), name="custom")
        assert s.backend_name == "custom"
        assert len(s.execute(MLIQ(q, 4)).matches) == 4
        with pytest.raises(CapabilityError):
            s.execute(TIQ(q, 0.5))  # no tiq method declared

    def test_register_backend(self, db, q):
        calls = []

        def factory(source, *, writable, options):
            from repro.engine.backends import SeqScanBackend

            calls.append(options)
            backend = SeqScanBackend(SequentialScanIndex(db))
            backend.name = "recording"
            return backend

        register_backend("recording", factory, "test double", replace=True)
        with connect(db, backend="recording", marker=1) as s:
            assert s.backend_name == "recording"
            assert len(s.execute(MLIQ(q, 2)).matches) == 2
        assert calls == [{"marker": 1}]
        assert "recording" in available_backends()
        with pytest.raises(ValueError):
            register_backend("recording", factory)


class TestDeprecationShims:
    def test_legacy_entry_points_warn_but_work(self, db, q):
        tree = bulk_load(db.vectors, sigma_rule=db.sigma_rule)
        scan = SequentialScanIndex(db)
        spec = MLIQuery(q, 3)
        for call in (
            lambda: tree.mliq(spec),
            lambda: tree.tiq(ThresholdQuery(q, 0.1)),
            lambda: tree.mliq_many([spec]),
            lambda: tree.tiq_many([ThresholdQuery(q, 0.1)]),
            lambda: scan.mliq(spec),
            lambda: scan.tiq(ThresholdQuery(q, 0.1)),
            lambda: scan.mliq_many([spec]),
            lambda: scan.tiq_many([ThresholdQuery(q, 0.1)]),
        ):
            with pytest.warns(DeprecationWarning, match="deprecated"):
                result = call()
            assert result is not None

    def test_engine_paths_emit_no_deprecation_warnings(self, db, q):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with connect(db, backend="tree") as s:
                s.execute_many([MLIQ(q, 3), TIQ(q, 0.1), RankQuery(q, 2)])
            with connect(db, backend="seqscan") as s:
                s.execute(MLIQ(q, 3))
            with connect(db, backend="xtree") as s:
                s.execute(MLIQ(q, 3))

    def test_top_level_exports(self):
        for name in ("connect", "Session", "MLIQ", "TIQ", "RankQuery"):
            assert hasattr(repro, name)


class TestEps:
    def test_tiq_eps_zero_is_exact_and_groups_do_not_leak(self, db, q):
        # A strict (eps=0) TIQ sharing a batch with a loose one must
        # still be answered exactly.
        with connect(db, backend="tree") as s:
            rs = s.execute_many([TIQ(q, 0.05, eps=0.0), TIQ(q, 0.05, eps=0.2)])
            exact = s.execute(TIQ(q, 0.05)).matches
        assert [m.key for m in rs[0]] == [m.key for m in exact]


class TestWriteSpecs:
    """Insert/Delete specs through execute_many: ordered runs, grouped
    inserts, capability gating."""

    def test_batch_order_is_read_your_writes(self, db, q):
        new = PFV(np.asarray(q.mu), np.full(3, 0.01), key="bullseye")
        with connect(db, backend="tree") as s:
            rs = s.execute_many(
                [
                    MLIQ(q, 3),          # before the insert: no bullseye
                    repro.Insert(new),
                    MLIQ(q, 3),          # after: bullseye dominates
                    repro.Delete(new),
                    MLIQ(q, 3),          # gone again
                ]
            )
            assert len(s) == len(db)
        assert rs[1] == [] and rs[3] == []  # write slots answer empty
        assert "bullseye" not in [m.key for m in rs[0]]
        assert [m.key for m in rs[2]][0] == "bullseye"
        assert [m.key for m in rs[4]] == [m.key for m in rs[0]]

    def test_consecutive_inserts_group_through_insert_many(self, db):
        calls = []

        class Probe(repro.engine.BackendAdapter):
            name = "probe"
            capabilities = frozenset({"mliq", "writable"})

            def run_mliq(self, specs):
                calls.append(("mliq", len(specs)))
                return [[] for _ in specs], repro.QueryStats()

            def count(self):
                return 5

            def insert(self, v):
                calls.append(("insert", 1))

            def insert_many(self, vectors):
                vectors = list(vectors)
                calls.append(("insert_many", len(vectors)))
                return len(vectors)

            def delete(self, v):
                calls.append(("delete", 1))
                return True

        q = make_random_query(d=3, seed=77)
        vs = [make_random_query(d=3, seed=100 + i) for i in range(4)]
        session = session_for(Probe())
        session.execute_many(
            [
                repro.Insert(vs[0]),
                repro.Insert(vs[1]),
                repro.Insert(vs[2]),   # one grouped run of 3
                MLIQ(q, 2),
                repro.Delete(vs[0]),
                repro.Insert(vs[3]),   # delete splits the runs
            ]
        )
        assert calls == [
            ("insert_many", 3),
            ("mliq", 1),
            ("delete", 1),
            ("insert_many", 1),
        ]

    def test_write_specs_rejected_without_capability(self, db, q):
        with connect(db, backend="seqscan") as s:
            with pytest.raises(CapabilityError):
                s.execute(repro.Insert(q))
            with pytest.raises(CapabilityError):
                s.execute_many([MLIQ(q, 1), repro.Delete(q)])

    def test_explain_rejects_write_specs(self, db, q):
        with connect(db, backend="tree") as s:
            with pytest.raises(TypeError, match="no plan"):
                s.explain(repro.Insert(q))

    def test_session_insert_many_on_disk_is_group_committed(
        self, tmp_path, db, q
    ):
        from repro.storage.wal import WriteAheadLog

        path = str(tmp_path / "w.gauss")
        bulk_load(db.vectors, sigma_rule=db.sigma_rule).save(path)
        fresh = [
            PFV(np.asarray(q.mu) + 0.01 * i, np.asarray(q.sigma), key=("f", i))
            for i in range(10)
        ]
        with connect(path, backend="disk", writable=True) as s:
            assert s.insert_many(fresh) == 10
            # One transaction sealed the whole batch.
            assert len(WriteAheadLog.scan(path + ".wal")) == 1
            assert len(s) == len(db) + 10
        with connect(path) as s:
            assert len(s) == len(db) + 10
