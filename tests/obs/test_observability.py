"""End-to-end observability: /metrics, trace propagation, slow queries.

Real servers on ephemeral ports, as in the serving test files. The
pinned properties are the tentpole's acceptance bar: ``GET /metrics``
speaks Prometheus text on both serving tiers and exposes the series
catalogue (admission, coalescing, pool, cluster fan-out, buffer, WAL);
a traced request answers with a span tree covering client → admission →
coalesce → shard; tracing N pipelined requests yields N distinct trees
without changing a single posterior bit; a killed worker increments
``repro_cluster_failover_total`` exactly once; and the slow-query log
captures spec + span tree + plan for requests over the threshold.
"""

import json
import re
import urllib.request

import pytest

from repro.cluster import ClusterError, SerialPool, ServeClient, serve
from repro.core.pfv import PFV
from repro.engine import MLIQ, TIQ, connect
from repro.obs import NullRegistry
from repro.obs.metrics import CONTENT_TYPE, counter as global_counter
from repro.serve import CoalesceConfig, JsonlClient, serve_async

from tests.conftest import make_random_db, make_random_query


def _family_names(text: str) -> set[str]:
    """Distinct metric family names in one exposition."""
    names = set()
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name = line.split("{")[0].split(" ")[0]
        name = re.sub(r"_(bucket|sum|count)$", "", name)
        names.add(name)
    return names


def _mliq_spec(q, k=3):
    return {"kind": "mliq", "mu": list(q.mu), "sigma": list(q.sigma), "k": k}


@pytest.fixture(scope="module")
def writable_index(tmp_path_factory):
    from repro.gausstree.bulkload import bulk_load
    from repro.storage.layout import PageLayout

    db = make_random_db(n=50, seed=70)
    path = str(tmp_path_factory.mktemp("obs") / "obs.gauss")
    tree = bulk_load(
        db.vectors, layout=PageLayout(dims=3), sigma_rule=db.sigma_rule
    )
    tree.save(path)
    return path


class TestMetricsExposition:
    def test_async_metrics_catalogue_spans_every_seam(self, writable_index):
        """One writable async server, driven with reads and writes:
        the exposition must carry the whole catalogue — admission,
        coalescing, session pool, buffer and WAL series."""
        session = connect(writable_index, writable=True)
        with serve_async(session, port=0) as server:
            host, port = server.address
            q = make_random_query(seed=71)
            with JsonlClient(host, port) as client:
                for k in range(1, 4):
                    assert client.query([MLIQ(q, k)])["status"] == 200
                assert (
                    client.insert([PFV([0.5] * 3, [0.2] * 3, key=990)])[
                        "status"
                    ]
                    == 200
                )
                text = client.metrics()
            # The HTTP shim serves the same text with the right type.
            with urllib.request.urlopen(server.url + "/metrics") as resp:
                assert resp.headers["Content-Type"] == CONTENT_TYPE
                assert resp.read().decode("utf-8") == text
        session.close()
        names = _family_names(text)
        expected = {
            # admission
            "repro_serve_queue_depth",
            "repro_serve_queue_depth_peak",
            "repro_serve_admitted_total",
            "repro_serve_shed_total",
            # coalescing
            "repro_serve_read_batches_total",
            "repro_serve_coalesced_reads_total",
            "repro_serve_write_batches_total",
            "repro_serve_coalesced_inserts_total",
            "repro_serve_batch_size",
            "repro_serve_admission_wait_seconds",
            "repro_serve_demux_fanout",
            # session pool + request counters
            "repro_serve_pool_size",
            "repro_serve_pool_in_use",
            "repro_serve_pool_acquires_total",
            "repro_serve_queries_total",
            "repro_serve_inserts_total",
            "repro_serve_errors_total",
            "repro_serve_execute_seconds",
            # storage (global registry, concatenated in)
            "repro_buffer_accesses_total",
            "repro_buffer_hit_ratio",
            "repro_wal_fsync_total",
            "repro_wal_fsync_seconds",
            "repro_wal_commits_total",
            "repro_wal_group_pages",
        }
        assert expected <= names, sorted(expected - names)
        assert len(expected) >= 12  # the acceptance floor, with margin
        # HELP/TYPE discipline: every family is typed.
        assert text.count("# TYPE repro_serve_queries_total counter") == 1

    def test_counters_are_monotone_across_scrapes(self, writable_index):
        session = connect(writable_index)
        with serve_async(session, port=0) as server:
            host, port = server.address
            q = make_random_query(seed=72)
            with JsonlClient(host, port) as client:
                client.query([MLIQ(q, 2)])
                first = client.metrics()
                client.query([MLIQ(q, 2)])
                client.query([TIQ(q, 0.1)])
                second = client.metrics()

        def series(text, name):
            for line in text.splitlines():
                if line.startswith(name + " "):
                    return float(line.split()[-1])
            raise AssertionError(f"{name} not in exposition")

        for name in (
            "repro_serve_queries_total",
            "repro_serve_admitted_total",
            "repro_serve_read_batches_total",
        ):
            assert series(second, name) >= series(first, name)
        assert series(second, "repro_serve_queries_total") == series(
            first, "repro_serve_queries_total"
        ) + 2
        session.close()

    def test_sync_server_metrics_and_cluster_series(self):
        """The threaded tier serves /metrics too; over a sharded
        session the global registry carries the fan-out series."""
        db = make_random_db(n=40, seed=73)
        session = connect(db, backend="sharded", shards=2)
        with serve(session, port=0) as server:
            client = ServeClient(server.url)
            q = make_random_query(seed=74)
            client.query([MLIQ(q, 3)])
            text = client.metrics()
        session.close()
        names = _family_names(text)
        assert {
            "repro_serve_queries_total",
            "repro_serve_pool_size",
            "repro_serve_execute_seconds",
            "repro_cluster_fanouts_total",
            "repro_cluster_fanout_seconds",
        } <= names, sorted(names)

    def test_null_registry_silences_the_server_series(self):
        db = make_random_db(n=30, seed=75)
        session = connect(db)
        with serve_async(
            session, port=0, registry=NullRegistry()
        ) as server:
            host, port = server.address
            with JsonlClient(host, port) as client:
                q = make_random_query(seed=76)
                assert client.query([MLIQ(q, 2)])["status"] == 200
                text = client.metrics()
        session.close()
        # The private registry renders nothing; only global series (a
        # shared process fixture) may remain.
        assert not any(
            n.startswith("repro_serve_") for n in _family_names(text)
        )


class TestStatsFromRegistry:
    def test_stats_carries_batch_size_summary_and_per_client(self):
        db = make_random_db(n=30, seed=81)
        session = connect(db)
        with serve_async(session, port=0) as server:
            host, port = server.address
            q = make_random_query(seed=82)
            with JsonlClient(host, port) as client:
                client.query([MLIQ(q, 2)])
                stats = client.stats()
        session.close()
        coalescing = stats["coalescing"]
        assert coalescing["read_batches"] >= 1
        summary = coalescing["batch_size"]
        assert summary["count"] == coalescing["read_batches"] + coalescing[
            "write_batches"
        ]
        assert "buckets" in summary and "mean" in summary
        # Idle connections have no pending entries to report.
        assert stats["admission"]["per_client_pending"] == {}


class TestTracePropagation:
    def test_traced_query_spans_client_to_shard(self):
        """The headline span tree: request → admission.wait +
        serve.execute → session.execute → cluster.fanout → shard."""
        db = make_random_db(n=40, seed=91)
        session = connect(db, backend="sharded", shards=2)
        with serve_async(session, port=0) as server:
            host, port = server.address
            q = make_random_query(seed=92)
            with JsonlClient(host, port) as client:
                resp = client.query([MLIQ(q, 3)], trace="feedc0de00000001")
        session.close()
        assert resp["status"] == 200
        trace = resp["trace"]
        assert trace["id"] == "feedc0de00000001"
        (root,) = trace["spans"]
        assert root["name"] == "request"
        child_names = [c["name"] for c in root["children"]]
        assert child_names == ["admission.wait", "serve.execute"]

        def walk(node):
            yield node
            for c in node.get("children", ()):
                yield from walk(c)

        nodes = list(walk(root))
        names = [n["name"] for n in nodes]
        assert "session.execute" in names
        assert "cluster.fanout" in names
        shards = {n["shard"] for n in nodes if n["name"] == "shard"}
        assert shards == {"00", "01"}  # one span per shard touched
        # Every span fits inside the request window. Wire values are
        # rounded to 6 decimals, so start + dur of a child can overhang
        # the root by up to ~1.5 us of pure rounding error.
        for n in nodes:
            assert n["start"] >= 0.0 and n["dur"] >= 0.0
            assert n["start"] + n["dur"] <= root["dur"] + 5e-6

    def test_n_pipelined_traces_are_distinct_and_results_unchanged(self):
        """Property: N concurrent traced queries through a 2-shard
        backend answer N span trees with unique IDs, each touching
        both shards — and tracing changes no result bit."""
        db = make_random_db(n=60, seed=93)
        session = connect(db, backend="sharded", shards=2)
        queries = [make_random_query(seed=200 + i) for i in range(8)]
        with serve_async(
            session,
            port=0,
            coalesce=CoalesceConfig(max_batch=8, max_delay_seconds=0.02),
        ) as server:
            host, port = server.address
            with JsonlClient(host, port) as client:
                plain_rids = [
                    client.send("query", queries=[_mliq_spec(q)])
                    for q in queries
                ]
                plain = [client.recv_for(r) for r in plain_rids]
                traced_rids = [
                    client.send("query", queries=[_mliq_spec(q)], trace=True)
                    for q in queries
                ]
                traced = [client.recv_for(r) for r in traced_rids]
        session.close()
        assert all(r["status"] == 200 for r in plain + traced)
        # Bit-identical answers with tracing on.
        for p, t in zip(plain, traced):
            assert p["results"] == t["results"]
        # N trees, N unique ids, every tree touches both shards.
        ids = [t["trace"]["id"] for t in traced]
        assert len(set(ids)) == len(queries)
        for t in traced:
            (root,) = t["trace"]["spans"]

            def shards_of(node, acc):
                if node["name"] == "shard":
                    acc.add(node.get("shard"))
                for c in node.get("children", ()):
                    shards_of(c, acc)
                return acc

            assert shards_of(root, set()) == {"00", "01"}
        # Untraced responses carry no tree at all.
        assert all("trace" not in p for p in plain)

    def test_http_header_traces_on_both_tiers(self):
        db = make_random_db(n=30, seed=94)
        session = connect(db)
        # Threaded tier: X-Repro-Trace via ServeClient.
        with serve(session, port=0) as server:
            answer = ServeClient(server.url).query(
                [MLIQ(make_random_query(seed=95), 2)], trace="beefbeefbeefbeef"
            )
            untraced = ServeClient(server.url).query(
                [MLIQ(make_random_query(seed=95), 2)]
            )
        assert answer.trace["id"] == "beefbeefbeefbeef"
        assert answer.trace["spans"][0]["name"] == "request"
        assert answer.trace["spans"][0]["dur"] > 0.0
        assert untraced.trace is None
        # Async HTTP shim honours the same header.
        with serve_async(session, port=0) as async_server:
            answer = ServeClient(async_server.url).query(
                [MLIQ(make_random_query(seed=96), 2)], trace=True
            )
        session.close()
        assert answer.trace is not None
        assert len(answer.trace["id"]) == 16
        assert answer.trace["spans"][0]["name"] == "request"

    def test_traced_insert_covers_the_group_commit(self, tmp_path):
        from repro.gausstree.bulkload import bulk_load
        from repro.storage.layout import PageLayout

        db = make_random_db(n=30, seed=97)
        path = str(tmp_path / "w.gauss")
        tree = bulk_load(
            db.vectors, layout=PageLayout(dims=3), sigma_rule=db.sigma_rule
        )
        tree.save(path)
        session = connect(path, writable=True)
        with serve_async(session, port=0) as server:
            host, port = server.address
            with JsonlClient(host, port) as client:
                resp = client.insert(
                    [PFV([0.4] * 3, [0.2] * 3, key=991)], trace=True
                )
        session.close()
        assert resp["status"] == 200

        def names(node):
            yield node["name"]
            for c in node.get("children", ()):
                yield from names(c)

        (root,) = resp["trace"]["spans"]
        all_names = {n for n in names(root)}
        assert "serve.insert" in all_names
        assert "wal.commit" in all_names  # durability visible in the tree


class TestFailoverAccounting:
    def test_killed_worker_counts_exactly_one_failover(self):
        """Regression: a worker death that fails over to a replica
        increments ``repro_cluster_failover_total`` exactly once, and
        the error path (no replica) carries shard + attempts."""
        calls = {"n": 0}

        def opener(key):
            return key

        def runner(session, payload):
            calls["n"] += 1
            if session == 0:  # primary dies on first touch
                raise RuntimeError("worker killed")
            return "ok"

        failover_counter = global_counter("repro_cluster_failover_total")
        retry_counter = global_counter("repro_cluster_retry_total")
        failovers_before = failover_counter.value
        retries_before = retry_counter.value
        pool = SerialPool(
            opener,
            runner,
            attempts=2,
            backoff=0.0,
            failover=lambda key, attempt: 1,
        )
        assert pool.run([(0, "payload")]) == ["ok"]
        assert failover_counter.value - failovers_before == 1
        assert retry_counter.value - retries_before == 1
        pool.close()

    def test_cluster_error_carries_shard_and_attempts(self):
        def runner(session, payload):
            raise RuntimeError("dead")

        pool = SerialPool(lambda k: k, runner, attempts=3, backoff=0.0)
        with pytest.raises(ClusterError) as info:
            pool.run([(7, "payload")])
        assert info.value.shard == "7"
        assert info.value.attempts == 3
        pool.close()


class TestSlowQueryLog:
    def test_slow_requests_logged_with_trace_and_plan(self, tmp_path):
        db = make_random_db(n=40, seed=101)
        session = connect(db)
        log_path = tmp_path / "slow.jsonl"
        with serve_async(
            session,
            port=0,
            slow_query_log=str(log_path),
            slow_query_ms=0.0,  # everything is slow: deterministic
        ) as server:
            host, port = server.address
            q = make_random_query(seed=102)
            with JsonlClient(host, port) as client:
                assert (
                    client.query([MLIQ(q, 3)], trace=True)["status"] == 200
                )
        session.close()
        lines = log_path.read_text().splitlines()
        assert lines
        entry = json.loads(lines[0])
        assert entry["source"] == "serve-async"
        assert entry["queries"][0]["kind"] == "mliq"
        assert entry["trace"]["spans"][0]["name"] == "request"
        assert "mliq" in entry["plan"]  # the explain() text rode along
        assert entry["stats"]["pages_accessed"] >= 0
        assert "buffer_hit_ratio" in entry["stats"]

    def test_sync_tier_logs_too(self, tmp_path):
        db = make_random_db(n=40, seed=103)
        session = connect(db)
        log_path = tmp_path / "slow-sync.jsonl"
        with serve(
            session,
            port=0,
            slow_query_log=str(log_path),
            slow_query_ms=0.0,
        ) as server:
            ServeClient(server.url).query(
                [TIQ(make_random_query(seed=104), 0.2)]
            )
        session.close()
        entry = json.loads(log_path.read_text().splitlines()[0])
        assert entry["source"] == "serve"
        assert entry["queries"][0]["kind"] == "tiq"
        assert entry["plan"]
