"""The zero-dependency metrics registry.

Pins the exposition format (Prometheus text 0.0.4: HELP/TYPE comments,
cumulative ``le`` buckets, integral floats printed as integers), the
registration semantics (idempotent by name, kind conflicts rejected,
callback-backed metrics read their source lazily) and the no-op mode
(:class:`NullRegistry` discards writes and renders nothing — the
``--no-metrics`` / overhead-benchmark contract).
"""

import pytest

from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    get_global_registry,
    set_global_registry,
)
from repro.obs.metrics import (
    SIZE_BUCKETS,
    buffer_total,
    counter as global_counter,
)


class TestCountersAndGauges:
    def test_counter_accumulates_and_renders(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", "Things counted.")
        c.inc()
        c.inc(4)
        assert c.value == 5
        text = reg.render()
        assert "# HELP repro_test_total Things counted." in text
        assert "# TYPE repro_test_total counter" in text
        assert "repro_test_total 5" in text

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_depth")
        g.set(7)
        g.dec(2)
        g.inc()
        assert g.value == 6
        assert "repro_depth 6" in reg.render()

    def test_registration_is_idempotent_by_name(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_same_total", "first help wins")
        b = reg.counter("repro_same_total", "ignored")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_kind_conflict_is_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_kind_total")
        with pytest.raises(ValueError):
            reg.gauge("repro_kind_total")

    def test_callback_metric_reads_source_lazily(self):
        reg = MetricsRegistry()
        state = {"n": 0}
        reg.counter("repro_live_total", callback=lambda: state["n"])
        state["n"] = 42
        assert "repro_live_total 42" in reg.render()
        state["n"] = 43
        assert reg.snapshot()["repro_live_total"] == 43

    def test_callback_with_labels_is_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter(
                "repro_bad_total", labelnames=("shard",), callback=lambda: 0
            )


class TestLabels:
    def test_labelled_children_render_sorted(self):
        reg = MetricsRegistry()
        fam = reg.counter("repro_shard_total", labelnames=("shard",))
        fam.labels(shard="01").inc(2)
        fam.labels(shard="00").inc()
        text = reg.render()
        assert 'repro_shard_total{shard="00"} 1' in text
        assert 'repro_shard_total{shard="01"} 2' in text
        assert text.index('shard="00"') < text.index('shard="01"')

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        fam = reg.gauge("repro_esc", labelnames=("name",))
        fam.labels(name='a"b\\c').set(1)
        assert 'name="a\\"b\\\\c"' in reg.render()

    def test_snapshot_keys_labelled_children(self):
        reg = MetricsRegistry()
        fam = reg.counter("repro_lab_total", labelnames=("shard",))
        fam.labels(shard="00").inc(3)
        assert reg.snapshot()["repro_lab_total"] == {"shard=00": 3}


class TestHistograms:
    def test_buckets_are_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_size", buckets=SIZE_BUCKETS)
        for v in (1, 1, 3, 200):
            h.observe(v)
        text = reg.render()
        # le="1" catches both 1s; le="4" adds the 3; 200 only in +Inf.
        assert 'repro_size_bucket{le="1"} 2' in text
        assert 'repro_size_bucket{le="4"} 3' in text
        assert 'repro_size_bucket{le="+Inf"} 4' in text
        assert "repro_size_sum 205" in text
        assert "repro_size_count 4" in text

    def test_summary_is_json_friendly(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_s", buckets=(1.0, 2.0))
        h.observe(1)
        h.observe(5)
        s = h.summary()
        assert s["count"] == 2 and s["sum"] == 6.0 and s["mean"] == 3.0
        assert s["buckets"] == {"1": 1, "2": 1, "+Inf": 2}

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("repro_bad", buckets=(2.0, 1.0))


class TestNullRegistry:
    def test_discards_everything(self):
        reg = NullRegistry()
        c = reg.counter("repro_x_total")
        c.inc(100)
        assert c.value == 0
        h = reg.histogram("repro_y")
        h.observe(1.0)
        assert h.summary()["count"] == 0
        assert h.labels(anything="x") is h
        assert reg.render() == ""
        assert reg.snapshot() == {}
        assert reg.enabled is False

    def test_global_swap_silences_module_helpers(self):
        previous = set_global_registry(NullRegistry())
        try:
            c = global_counter("repro_swapped_total")
            c.inc()
            assert c.value == 0
            assert get_global_registry().render() == ""
        finally:
            set_global_registry(previous)
        # Restored: the helper registers on the real registry again.
        global_counter("repro_swapped_total").inc()
        assert get_global_registry().snapshot()["repro_swapped_total"] == 1


class TestBufferCollection:
    def test_buffer_series_installed_on_global_registry(self):
        text = get_global_registry().render()
        for name in (
            "repro_buffer_accesses_total",
            "repro_buffer_hits_total",
            "repro_buffer_faults_total",
            "repro_buffer_evictions_total",
            "repro_buffer_hit_ratio",
            "repro_buffers_live",
        ):
            assert name in text

    def test_retirement_keeps_counters_monotone(self, tmp_path):
        import gc

        from tests.conftest import make_random_db, make_random_query
        from repro.engine import MLIQ, connect
        from repro.gausstree.bulkload import bulk_load
        from repro.storage.layout import PageLayout

        db = make_random_db(n=40, seed=77)
        path = str(tmp_path / "mono.gauss")
        tree = bulk_load(
            db.vectors, layout=PageLayout(dims=3), sigma_rule=db.sigma_rule
        )
        tree.save(path)
        session = connect(path)  # disk backend: a real page buffer
        session.execute(MLIQ(make_random_query(seed=78), 3))
        during = buffer_total("accesses")
        assert during > 0
        session.close()
        del session, tree
        gc.collect()
        # The buffer is gone, but its totals were folded into the
        # retirement ledger: the cumulative series never move back.
        assert buffer_total("accesses") >= during
