"""Trace trees, contextvar propagation, and the slow-query log."""

import json
import threading

from repro.obs import (
    SlowQueryLog,
    Span,
    Trace,
    current_trace,
    format_span_tree,
    span,
    tracing,
)
from repro.obs.trace import mint_trace_id


class TestTrace:
    def test_ids_are_16_hex_and_unique(self):
        ids = {mint_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)

    def test_supplied_id_is_kept(self):
        assert Trace("cafe").trace_id == "cafe"

    def test_span_blocks_nest(self):
        t = Trace()
        with t.span("outer"):
            with t.span("inner"):
                t.add("leaf", dur=0.001)
        d = t.to_dict()
        assert [s["name"] for s in d["spans"]] == ["outer"]
        outer = d["spans"][0]
        assert outer["children"][0]["name"] == "inner"
        assert outer["children"][0]["children"][0]["name"] == "leaf"
        # Each parent covers at least its children's time.
        assert outer["dur"] >= outer["children"][0]["dur"]

    def test_raising_span_is_marked_error(self):
        t = Trace()
        try:
            with t.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert t.to_dict()["spans"][0]["status"] == "error"

    def test_to_dict_omits_unset_annotations(self):
        t = Trace()
        t.add("bare", dur=0.0)
        t.add("full", dur=0.0, shard="01", pages=4, count=2, status="ok")
        bare, full = t.to_dict()["spans"]
        assert set(bare) == {"name", "start", "dur"}
        assert full["shard"] == "01" and full["pages"] == 4
        assert full["count"] == 2 and full["status"] == "ok"

    def test_shifted_moves_whole_subtree(self):
        root = Span("a", 0.5, 1.0)
        root.children.append(Span("b", 0.7, 0.1))
        moved = root.shifted(0.25)
        assert moved.start == 0.75 and moved.children[0].start == 0.95
        # The original is untouched (shifted is a deep copy).
        assert root.start == 0.5 and root.children[0].start == 0.7

    def test_module_span_is_noop_without_active_trace(self):
        assert current_trace() is None
        with span("ignored") as node:
            assert node is None

    def test_tracing_activates_and_restores(self):
        t = Trace()
        with tracing(t):
            assert current_trace() is t
            with span("step", count=3) as node:
                assert node.count == 3
            with tracing(None):  # explicit deactivation nests too
                assert current_trace() is None
            assert current_trace() is t
        assert current_trace() is None
        assert [s.name for s in t.spans] == ["step"]

    def test_context_is_per_thread(self):
        t = Trace()
        seen = []

        def other():
            seen.append(current_trace())

        with tracing(t):
            thread = threading.Thread(target=other)
            thread.start()
            thread.join()
        assert seen == [None]  # a fresh thread has a fresh context

    def test_format_span_tree_renders_every_node(self):
        t = Trace("feedbeef00000000")
        with t.span("request", count=2):
            t.add("shard", dur=0.002, shard="00", pages=7)
        text = format_span_tree(t.to_dict())
        assert text.splitlines()[0] == "trace feedbeef00000000"
        assert "request" in text and "shard" in text
        assert "shard=00" in text and "pages=7" in text


class TestSlowQueryLog:
    def test_fast_queries_write_nothing(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(str(path), threshold_ms=100.0)
        assert log.maybe_log(0.05) is False
        assert log.entries_written == 0
        assert not path.exists()  # file opened lazily, never touched
        log.close()

    def test_slow_entry_is_self_contained_jsonl(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        with SlowQueryLog(str(path), threshold_ms=10.0) as log:
            wrote = log.maybe_log(
                0.5,
                queries=[{"kind": "mliq", "k": 3}],
                trace={"id": "abc", "spans": []},
                plan="plan text",
                stats={"pages_accessed": 9},
                source="test",
            )
            assert wrote and log.entries_written == 1
        entry = json.loads(path.read_text().splitlines()[0])
        assert entry["elapsed_ms"] == 500.0
        assert entry["threshold_ms"] == 10.0
        assert entry["queries"] == [{"kind": "mliq", "k": 3}]
        assert entry["trace"]["id"] == "abc"
        assert entry["plan"] == "plan text"
        assert entry["stats"]["pages_accessed"] == 9
        assert entry["source"] == "test"
        assert entry["ts"] > 0

    def test_threshold_seconds_matches_ms(self):
        log = SlowQueryLog("/dev/null", threshold_ms=250.0)
        assert log.threshold_seconds == 0.25
        log.close()

    def test_concurrent_writers_interleave_whole_lines(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(str(path), threshold_ms=0.0)
        threads = [
            threading.Thread(
                target=lambda i=i: [
                    log.maybe_log(1.0, source=f"w{i}") for _ in range(20)
                ]
            )
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        log.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 80 == log.entries_written
        for line in lines:
            json.loads(line)  # every line parses — no torn writes
