"""The asyncio serving tier, exercised over real sockets.

Each test starts a real AsyncQueryServer on an ephemeral port and talks
to it with the pipelined JSONL client and/or the HTTP ServeClient. The
properties under test are the tentpole's pillars: coalescing must be
invisible in the answers (bit-identical posteriors vs a direct
session), admission control must shed with 429s instead of growing
threads or queues, a greedy client must not starve a polite one, and
shutdown must drain — answer everything admitted, then close.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cluster import RemoteError, ServeClient
from repro.core.pfv import PFV
from repro.engine import MLIQ, RankQuery, TIQ, connect
from repro.serve import (
    AdmissionConfig,
    AsyncQueryServer,
    CoalesceConfig,
    JsonlClient,
    serve_async,
)

from tests.conftest import make_random_db, make_random_query


@pytest.fixture(scope="module")
def served():
    db = make_random_db(n=60, seed=7)
    session = connect(db)
    with serve_async(session, port=0) as server:
        yield server, session, db
    session.close()


def _mliq_spec(q, k=3):
    return {"kind": "mliq", "mu": list(q.mu), "sigma": list(q.sigma), "k": k}


class TestProtocols:
    def test_jsonl_roundtrip_matches_direct_session(self, served):
        server, session, _ = served
        host, port = server.address
        q = make_random_query(seed=11)
        direct = session.execute_many([MLIQ(q, 4), TIQ(q, 0.05)])
        with JsonlClient(host, port) as client:
            resp = client.query([MLIQ(q, 4), TIQ(q, 0.05)])
        assert resp["status"] == 200
        assert resp["n_queries"] == 2
        for wire_matches, direct_matches in zip(resp["results"], direct):
            assert [m["key"] for m in wire_matches] == [
                m.key for m in direct_matches
            ]
            for wm, dm in zip(wire_matches, direct_matches):
                assert wm["probability"] == dm.probability

    def test_pipelined_responses_echo_ids(self, served):
        server, _, _ = served
        host, port = server.address
        q = make_random_query(seed=12)
        with JsonlClient(host, port) as client:
            rids = [
                client.send("query", queries=[_mliq_spec(q, k)])
                for k in range(1, 9)
            ]
            # Collect in reverse: recv_for must demux out-of-order.
            for k, rid in reversed(list(enumerate(rids, start=1))):
                resp = client.recv_for(rid)
                assert resp["id"] == rid
                assert resp["status"] == 200
                assert len(resp["results"][0]) == k

    def test_http_shim_serves_serveclient_unchanged(self, served):
        server, session, _ = served
        q = make_random_query(seed=13)
        client = ServeClient(server.url)
        answer = client.query([MLIQ(q, 3), RankQuery(q, 2)])
        direct = session.execute_many([MLIQ(q, 3), RankQuery(q, 2)])
        assert answer.keys() == [[m.key for m in ms] for ms in direct]
        health = client.healthz()
        assert health["serving"] == "async"
        stats = client.stats()
        assert "admission" in stats and "coalescing" in stats

    def test_http_errors_are_structured(self, served):
        server, _, _ = served
        url = server.url
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(url + "/nope")
        assert info.value.code == 404
        assert "error" in json.loads(info.value.read().decode())
        # A write spec on /query points the caller at /insert.
        request = urllib.request.Request(
            url + "/query",
            data=json.dumps(
                {"queries": [{"kind": "insert", "mu": [0.1], "sigma": [0.2]}]}
            ).encode(),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request)
        assert info.value.code == 400

    def test_read_only_disk_server_refuses_insert_with_403(self, tmp_path):
        from repro.gausstree.bulkload import bulk_load
        from repro.storage.layout import PageLayout

        db = make_random_db(n=30, seed=8)
        index_path = str(tmp_path / "ro.gauss")
        tree = bulk_load(
            db.vectors, layout=PageLayout(dims=3), sigma_rule=db.sigma_rule
        )
        tree.save(index_path)
        session = connect(index_path)  # read-only
        with serve_async(session, port=0) as server:
            request = urllib.request.Request(
                server.url + "/insert",
                data=json.dumps(
                    {"vectors": [{"mu": [0.1] * 3, "sigma": [0.2] * 3}]}
                ).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request)
            assert info.value.code == 403
            assert "read-only" in json.loads(info.value.read().decode())["error"]
        session.close()

    def test_jsonl_rejects_malformed_lines_without_dying(self, served):
        server, _, _ = served
        host, port = server.address
        with JsonlClient(host, port) as client:
            client._file.write(b'{"op": "no-such-op", "id": 1}\n')
            client._file.flush()
            resp = client.recv()
            assert resp["status"] == 400 and "unknown op" in resp["error"]
            # The connection survives and still serves.
            q = make_random_query(seed=14)
            assert client.query([MLIQ(q, 1)])["status"] == 200


class TestCoalescing:
    def test_concurrent_singletons_match_client_batched_posteriors(self):
        """The coalescing pillar: N clients' singleton queries fused
        server-side must answer bit-for-bit what one client-side batch
        answers (same execute_many entry point underneath)."""
        db = make_random_db(n=80, seed=21)
        session = connect(db)
        queries = [make_random_query(seed=100 + i) for i in range(12)]
        batched = session.execute_many([MLIQ(q, 3) for q in queries])
        results = [None] * len(queries)
        # A long window so near-simultaneous singletons surely fuse.
        with serve_async(
            session,
            port=0,
            coalesce=CoalesceConfig(max_batch=32, max_delay_seconds=0.05),
        ) as server:
            host, port = server.address
            barrier = threading.Barrier(len(queries))

            def one(i):
                with JsonlClient(host, port) as client:
                    barrier.wait()
                    results[i] = client.query([MLIQ(queries[i], 3)])

            threads = [
                threading.Thread(target=one, args=(i,))
                for i in range(len(queries))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats_client = JsonlClient(host, port)
            coalescing = stats_client.stats()["coalescing"]
            stats_client.close()
        session.close()
        for i, direct_matches in enumerate(batched):
            resp = results[i]
            assert resp["status"] == 200
            assert [m["key"] for m in resp["results"][0]] == [
                m.key for m in direct_matches
            ]
            for wm, dm in zip(resp["results"][0], direct_matches):
                assert wm["probability"] == dm.probability  # bit-identical
                assert wm["log_density"] == dm.log_density
        # And the server really did fuse: fewer batches than requests.
        assert coalescing["read_batches"] < len(queries)
        assert coalescing["coalesced_reads"] > 0

    def test_coalesced_response_reports_batch_size(self):
        db = make_random_db(n=40, seed=22)
        session = connect(db)
        with serve_async(
            session,
            port=0,
            coalesce=CoalesceConfig(max_batch=8, max_delay_seconds=0.05),
        ) as server:
            host, port = server.address
            q = make_random_query(seed=23)
            with JsonlClient(host, port) as a, JsonlClient(host, port) as b:
                ra = a.send("query", queries=[_mliq_spec(q)])
                rb = b.send("query", queries=[_mliq_spec(q)])
                answers = [a.recv_for(ra), b.recv_for(rb)]
            assert {resp["coalesced"] for resp in answers} <= {1, 2}
        session.close()


class TestBackpressure:
    def test_overload_sheds_with_429_and_bounded_threads(self):
        db = make_random_db(n=400, d=6, seed=31)
        session = connect(db)
        before_threads = threading.active_count()
        with serve_async(
            session,
            port=0,
            admission=AdmissionConfig(max_queue=8, max_queue_per_client=8),
            coalesce=CoalesceConfig(max_batch=1, max_delay_seconds=0.0),
        ) as server:
            host, port = server.address
            q = make_random_query(d=6, seed=32)
            spec = _mliq_spec(q, 5)
            with JsonlClient(host, port) as client:
                rids = [
                    client.send("query", queries=[spec]) for _ in range(150)
                ]
                during_threads = threading.active_count()
                statuses = [client.recv_for(rid)["status"] for rid in rids]
            # Every request is answered: accepted ones with 200, shed
            # ones with 429 — never dropped, never an error.
            assert statuses.count(200) + statuses.count(429) == 150
            assert statuses.count(429) > 0
            # One event loop + a fixed executor, not a thread per
            # request: the thread count stays O(1).
            assert during_threads - before_threads <= 4
            with JsonlClient(host, port) as client:
                admission = client.stats()["admission"]
            assert admission["rejected"] == statuses.count(429)
            assert admission["peak_pending"] <= 8
        session.close()

    def test_429_carries_retry_after(self):
        db = make_random_db(n=200, d=6, seed=33)
        session = connect(db)
        with serve_async(
            session,
            port=0,
            admission=AdmissionConfig(
                max_queue=2, max_queue_per_client=2, retry_after_seconds=0.25
            ),
            coalesce=CoalesceConfig(max_batch=1, max_delay_seconds=0.0),
        ) as server:
            host, port = server.address
            q = make_random_query(d=6, seed=34)
            with JsonlClient(host, port) as client:
                rids = [
                    client.send("query", queries=[_mliq_spec(q)])
                    for _ in range(40)
                ]
                rejected = [
                    resp
                    for resp in (client.recv_for(rid) for rid in rids)
                    if resp["status"] == 429
                ]
            assert rejected
            assert all(resp["retry_after"] == 0.25 for resp in rejected)
        session.close()

    def test_backpressure_is_not_counted_as_an_error(self):
        db = make_random_db(n=200, d=6, seed=35)
        session = connect(db)
        with serve_async(
            session,
            port=0,
            admission=AdmissionConfig(max_queue=2, max_queue_per_client=2),
            coalesce=CoalesceConfig(max_batch=1, max_delay_seconds=0.0),
        ) as server:
            host, port = server.address
            q = make_random_query(d=6, seed=36)
            with JsonlClient(host, port) as client:
                rids = [
                    client.send("query", queries=[_mliq_spec(q)])
                    for _ in range(40)
                ]
                statuses = [client.recv_for(rid)["status"] for rid in rids]
                stats = client.stats()
            assert statuses.count(429) > 0
            assert stats["errors"] == 0  # shedding is service, not failure
        session.close()


class TestFairnessUnderLoad:
    def test_greedy_client_does_not_starve_a_polite_one(self):
        """A client pipelining a hundred requests shares the server
        round-robin with one sending a request at a time: the polite
        client's small workload finishes while the greedy one still has
        a deep backlog, instead of queueing behind all of it."""
        db = make_random_db(n=2000, d=8, seed=41)
        session = connect(db)
        with serve_async(
            session,
            port=0,
            admission=AdmissionConfig(max_queue=512, max_queue_per_client=256),
            coalesce=CoalesceConfig(max_batch=4, max_delay_seconds=0.0),
        ) as server:
            host, port = server.address
            q = make_random_query(d=8, seed=42)
            spec = _mliq_spec(q, 5)
            greedy = JsonlClient(host, port)
            greedy_rids = [
                greedy.send("query", queries=[spec]) for _ in range(200)
            ]
            polite_done = []

            def polite():
                with JsonlClient(host, port) as client:
                    for _ in range(5):
                        resp = client.request("query", queries=[spec])
                        assert resp["status"] == 200
                polite_done.append(time.perf_counter())

            thread = threading.Thread(target=polite)
            thread.start()
            greedy_times = []
            greedy_statuses = []
            for rid in greedy_rids:
                greedy_statuses.append(greedy.recv_for(rid)["status"])
                greedy_times.append(time.perf_counter())
            thread.join()
            greedy.close()
        session.close()
        assert all(s in (200, 429) for s in greedy_statuses)
        # Round-robin dequeue: the polite client's whole workload (5
        # sequential requests) finishes well inside the greedy backlog
        # (200 pipelined) — before its last response, not behind it.
        # Without fairness it would queue behind ~all 200.
        assert polite_done and polite_done[0] <= greedy_times[-1]


class TestDrainAndWrites:
    def test_graceful_drain_answers_everything_admitted(self):
        db = make_random_db(n=300, d=6, seed=51)
        session = connect(db)
        server = serve_async(
            session,
            port=0,
            coalesce=CoalesceConfig(max_batch=4, max_delay_seconds=0.0),
        )
        host, port = server.address
        q = make_random_query(d=6, seed=52)
        client = JsonlClient(host, port)
        rids = [
            client.send("query", queries=[_mliq_spec(q, 5)])
            for _ in range(20)
        ]
        # Wait for the first answer so the backlog is mid-flight. That
        # alone does not prove the server *read* the other 19 lines off
        # the socket (they could still be in the kernel buffer and get
        # 503 once draining starts); a stats round-trip on the same
        # connection is a barrier — lines are processed in order, so by
        # the time it answers, everything before it was admitted.
        first = client.recv_for(rids[0])
        assert first["status"] == 200
        snap = client.request("stats")
        assert snap["admission"]["admitted"] >= 20, snap["admission"]
        shutdown = threading.Thread(target=server.shutdown)
        shutdown.start()
        statuses = [client.recv_for(rid)["status"] for rid in rids[1:]]
        shutdown.join()
        # Admitted requests all got real answers, not connection resets.
        assert all(s == 200 for s in statuses)
        client.close()
        session.close()

    def test_draining_server_answers_503(self):
        db = make_random_db(n=40, seed=53)
        session = connect(db)
        server = serve_async(session, port=0)
        host, port = server.address
        client = JsonlClient(host, port)
        assert client.healthz()["status"] == 200
        # Flip the queue to draining directly (on the loop) so we can
        # observe the 503 window before the listener closes.
        server._loop.call_soon_threadsafe(server._admission.begin_drain)
        time.sleep(0.05)
        q = make_random_query(seed=54)
        resp = client.request("query", queries=[_mliq_spec(q)])
        assert resp["status"] == 503
        assert resp["retry_after"] > 0
        client.close()
        server.shutdown()
        session.close()

    def test_concurrent_inserts_share_one_group_commit(self, tmp_path):
        from repro.gausstree.bulkload import bulk_load
        from repro.storage.layout import PageLayout

        db = make_random_db(n=50, seed=55)
        index_path = str(tmp_path / "db.gauss")
        tree = bulk_load(
            db.vectors, layout=PageLayout(dims=3), sigma_rule=db.sigma_rule
        )
        tree.save(index_path)
        session = connect(index_path, writable=True)
        with serve_async(
            session,
            port=0,
            coalesce=CoalesceConfig(max_batch=16, max_delay_seconds=0.05),
        ) as server:
            host, port = server.address
            barrier = threading.Barrier(6)
            acks = [None] * 6

            def one(i):
                with JsonlClient(host, port) as client:
                    barrier.wait()
                    acks[i] = client.insert(
                        [PFV([0.1 * i] * 3, [0.2] * 3, key=900 + i)]
                    )

            threads = [
                threading.Thread(target=one, args=(i,)) for i in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with JsonlClient(host, port) as client:
                coalescing = client.stats()["coalescing"]
        assert all(a["status"] == 200 and a["inserted"] == 1 for a in acks)
        # Fewer WAL transactions than clients: inserts fused into
        # shared group commits.
        assert coalescing["write_batches"] < 6
        assert coalescing["coalesced_inserts"] > 0
        assert len(session) == 56
        session.close()
        # Every acked key is durably in the index.
        reopened = connect(index_path)
        keys = {v.key for v in reopened.database()}
        assert {900 + i for i in range(6)} <= keys
        reopened.close()


class TestServeClientBackoff:
    def test_429_retries_until_served(self):
        """ServeClient rides out backpressure: a tiny queue rejects
        most of a burst, but with backoff every request eventually
        lands — no RemoteError surfaces to the caller."""
        db = make_random_db(n=300, d=6, seed=61)
        session = connect(db)
        with serve_async(
            session,
            port=0,
            admission=AdmissionConfig(
                max_queue=2, max_queue_per_client=2, retry_after_seconds=0.02
            ),
            coalesce=CoalesceConfig(max_batch=1, max_delay_seconds=0.0),
        ) as server:
            client = ServeClient(server.url, retry_backoff=0.02)
            q = make_random_query(d=6, seed=62)

            errors = []
            def hammer():
                try:
                    for _ in range(6):
                        client.query(MLIQ(q, 5))
                except RemoteError as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=hammer) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            rejected = client.stats()["admission"]["rejected"]
        session.close()
        assert rejected > 0  # backpressure really happened; retries hid it

    def test_opt_out_surfaces_429_as_remote_error(self):
        db = make_random_db(n=300, d=6, seed=63)
        session = connect(db)
        with serve_async(
            session,
            port=0,
            admission=AdmissionConfig(max_queue=1, max_queue_per_client=1),
            coalesce=CoalesceConfig(max_batch=1, max_delay_seconds=0.0),
        ) as server:
            client = ServeClient(server.url, retry_busy=False)
            q = make_random_query(d=6, seed=64)
            statuses = []

            def hammer():
                try:
                    for _ in range(10):
                        client.query(MLIQ(q, 5))
                        statuses.append(200)
                except RemoteError as exc:
                    statuses.append(exc.status)

            threads = [threading.Thread(target=hammer) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        session.close()
        assert 429 in statuses
