"""AdmissionQueue unit tests: bounds, fairness, drain — no event loop.

The queue is deliberately plain single-threaded code (the asyncio
server only touches it from its loop), so these tests drive it directly
and assert the exact dequeue orders the fairness guarantee promises.
"""

import pytest

from repro.serve import AdmissionConfig, AdmissionError, AdmissionQueue


def _drain_all(q, limit=10_000):
    return q.take_run(lambda item: True, limit)


class TestBounds:
    def test_global_cap_rejects_with_429(self):
        q = AdmissionQueue(AdmissionConfig(max_queue=3, max_queue_per_client=99))
        for i in range(3):
            q.offer("a", i)
        with pytest.raises(AdmissionError) as info:
            q.offer("b", 99)
        assert info.value.status == 429
        assert info.value.retry_after == q.config.retry_after_seconds
        assert q.pending == 3
        assert q.snapshot()["rejected"] == 1

    def test_per_client_cap_rejects_only_the_greedy_client(self):
        q = AdmissionQueue(AdmissionConfig(max_queue=100, max_queue_per_client=2))
        q.offer("greedy", 1)
        q.offer("greedy", 2)
        with pytest.raises(AdmissionError):
            q.offer("greedy", 3)
        q.offer("polite", 1)  # other clients unaffected
        assert q.pending == 3

    def test_rejection_does_not_lose_queued_items(self):
        q = AdmissionQueue(AdmissionConfig(max_queue=2))
        q.offer("a", "x")
        q.offer("a", "y")
        with pytest.raises(AdmissionError):
            q.offer("a", "z")
        assert _drain_all(q) == ["x", "y"]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_queue=0)
        with pytest.raises(ValueError):
            AdmissionConfig(max_queue_per_client=0)
        with pytest.raises(ValueError):
            AdmissionConfig(retry_after_seconds=-1)


class TestFairness:
    def test_round_robin_interleaves_clients(self):
        q = AdmissionQueue()
        for i in range(10):
            q.offer("greedy", f"g{i}")
        for i in range(2):
            q.offer("polite", f"p{i}")
        # One item per client per ring pass: the polite client's two
        # requests land in the first two passes, not after all ten
        # greedy ones.
        assert q.take_run(lambda item: True, 4) == ["g0", "p0", "g1", "p1"]
        assert _drain_all(q) == [f"g{i}" for i in range(2, 10)]

    def test_per_client_fifo_is_preserved(self):
        q = AdmissionQueue()
        for i in range(5):
            q.offer("a", ("a", i))
            q.offer("b", ("b", i))
        taken = _drain_all(q)
        assert [x for x in taken if x[0] == "a"] == [("a", i) for i in range(5)]
        assert [x for x in taken if x[0] == "b"] == [("b", i) for i in range(5)]

    def test_non_matching_head_blocks_only_that_client(self):
        # Client a's head is a write; a read run must take b's reads
        # and leave a untouched (per-client FIFO: never skip a head).
        q = AdmissionQueue()
        q.offer("a", ("write", 1))
        q.offer("a", ("read", 2))
        q.offer("b", ("read", 3))
        reads = q.take_run(lambda item: item[0] == "read", 10)
        assert reads == [("read", 3)]
        assert q.peek() == ("write", 1)
        assert q.pending == 2

    def test_weighted_limit_counts_operations_not_requests(self):
        q = AdmissionQueue()
        q.offer("a", 5)  # weights are the items themselves here
        q.offer("b", 5)
        q.offer("c", 5)
        taken = q.take_run(lambda item: True, 8, weight=lambda item: item)
        # First always fits; second reaches the limit (10 >= 8); stop.
        assert taken == [5, 5]
        assert q.pending == 1

    def test_oversized_first_item_still_dequeues(self):
        q = AdmissionQueue()
        q.offer("a", 100)
        assert q.take_run(lambda item: True, 8, weight=lambda item: item) == [100]


class TestDrain:
    def test_drain_rejects_new_but_serves_queued(self):
        q = AdmissionQueue()
        q.offer("a", 1)
        q.begin_drain()
        with pytest.raises(AdmissionError) as info:
            q.offer("a", 2)
        assert info.value.status == 503
        assert _drain_all(q) == [1]
        assert q.snapshot()["rejected_draining"] == 1

    def test_peek_skips_emptied_clients(self):
        q = AdmissionQueue()
        q.offer("a", 1)
        assert _drain_all(q) == [1]
        assert q.peek() is None
        q.offer("b", 2)
        assert q.peek() == 2

    def test_has_checks_heads_only(self):
        q = AdmissionQueue()
        q.offer("a", ("w", 1))
        q.offer("a", ("r", 2))
        assert q.has(lambda item: item[0] == "w")
        assert not q.has(lambda item: item[0] == "r")  # behind the write
