"""Coalesced-insert durability: kill -9 after ack, recover everything.

The write-coalescing pillar's contract is that a 200 on ``insert``
means the shared group-commit fsync completed — so SIGKILLing the
server immediately after the acks and reopening the index through
ordinary WAL recovery must surface every acked vector. The server runs
as a real ``repro serve --async --writable`` subprocess; inserts arrive
on concurrent pipelined connections so they actually coalesce.
"""

import os
import re
import signal
import subprocess
import sys
import threading

import pytest

from repro.core.pfv import PFV
from repro.engine import connect
from repro.serve import JsonlClient

from tests.conftest import make_random_db

_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _build_index(tmp_path, dims=3):
    from repro.gausstree.bulkload import bulk_load
    from repro.storage.layout import PageLayout

    db = make_random_db(n=40, d=dims, seed=71)
    index_path = str(tmp_path / "durable.gauss")
    tree = bulk_load(
        db.vectors, layout=PageLayout(dims=dims), sigma_rule=db.sigma_rule
    )
    tree.save(index_path)
    return index_path


@pytest.mark.skipif(sys.platform == "win32", reason="SIGKILL is POSIX-only")
def test_acked_coalesced_inserts_survive_kill_dash_nine(tmp_path):
    index_path = _build_index(tmp_path)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(_SRC)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            index_path,
            "--writable",
            "--async",
            "--port",
            "0",
            # A wide window so the concurrent bursts really fuse into
            # shared group commits before any ack goes out.
            "--max-batch",
            "32",
            "--max-delay-ms",
            "20",
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        port = None
        for _ in range(50):
            line = proc.stdout.readline()
            match = re.search(r"serving http://[\d.]+:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
        assert port is not None, "server never printed its address"

        n_clients, per_client = 6, 4
        barrier = threading.Barrier(n_clients)
        acked = [[] for _ in range(n_clients)]

        def one(i):
            with JsonlClient("127.0.0.1", port) as client:
                barrier.wait()
                for j in range(per_client):
                    key = 1000 + i * per_client + j
                    resp = client.insert(
                        [PFV([0.05 * i, 0.05 * j, 0.5], [0.2] * 3, key=key)]
                    )
                    if resp["status"] == 200:
                        acked[i].append(key)

        threads = [
            threading.Thread(target=one, args=(i,)) for i in range(n_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        acked_keys = {k for keys in acked for k in keys}
        assert acked_keys, "no insert was acked"
        # Some inserts must actually have shared a group commit for the
        # test to mean anything.
        with JsonlClient("127.0.0.1", port) as client:
            coalescing = client.stats()["coalescing"]
        assert coalescing["write_batches"] < len(acked_keys)
    finally:
        # No drain, no checkpoint, no atexit — the crash.
        proc.kill()
        proc.wait(timeout=30)

    # WAL recovery on reopen must surface every acked vector.
    session = connect(index_path)
    try:
        recovered = {v.key for v in session.database()}
    finally:
        session.close()
    missing = acked_keys - recovered
    assert not missing, f"acked inserts lost after kill -9: {sorted(missing)}"
