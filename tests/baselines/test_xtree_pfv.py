"""Tests of the paper's X-tree filter-and-refine competitor."""

import numpy as np
import pytest

from repro.baselines.xtree_pfv import XTreePFVIndex
from repro.core.database import PFVDatabase
from repro.core.pfv import PFV
from repro.core.queries import MLIQuery, ThresholdQuery
from repro.core.scan import scan_mliq, scan_tiq

from tests.conftest import make_random_db, make_random_query


@pytest.fixture(scope="module")
def indexed_db():
    db = make_random_db(n=300, d=3, seed=2)
    return db, XTreePFVIndex(db)


class TestConstruction:
    def test_empty_database_answers_empty(self):
        # Normalised edge-case semantics (repro.engine.spec): an empty
        # database is a valid source whose queries answer empty.
        idx = XTreePFVIndex(PFVDatabase())
        from tests.conftest import make_random_query

        q = make_random_query(d=3, seed=5)
        matches, stats = idx._mliq_impl(MLIQuery(q, 3))
        assert matches == [] and stats.pages_accessed == 0
        matches, _ = idx._tiq_impl(ThresholdQuery(q, 0.2))
        assert matches == []

    def test_repr(self, indexed_db):
        _, idx = indexed_db
        assert "XTreePFVIndex" in repr(idx)


class TestMLIQ:
    def test_results_are_subset_of_scan_ranking(self, indexed_db):
        # The filter may *lose* answers (documented inexactness) but must
        # never rank candidates differently than the exact densities.
        db, idx = indexed_db
        q = make_random_query(d=3, seed=3)
        got, stats = idx.mliq(MLIQuery(q, 5))
        scan_order = [m.key for m in scan_mliq(db, MLIQuery(q, len(db)))]
        positions = [scan_order.index(m.key) for m in got]
        assert positions == sorted(positions)
        assert stats.pages_accessed > 0
        assert stats.objects_refined >= len(got)

    def test_usually_finds_reobserved_object(self):
        # Identifiable data (small sigmas vs spacing) + only 3 dimensions
        # (joint filter coverage ~0.95^3): re-observations should mostly
        # hit.
        db = make_random_db(n=200, d=3, seed=4, sigma_low=0.01, sigma_high=0.06)
        idx = XTreePFVIndex(db)
        rng = np.random.default_rng(5)
        hits = 0
        for row in rng.choice(200, 30, replace=False):
            v = db[int(row)]
            q = PFV(rng.normal(v.mu, v.sigma), v.sigma)
            got, _ = idx.mliq(MLIQuery(q, 1))
            hits += bool(got) and got[0].key == v.key
        assert hits >= 20

    def test_no_candidates_returns_empty(self, indexed_db):
        _, idx = indexed_db
        q = PFV([99.0, 99.0, 99.0], [0.001, 0.001, 0.001])
        got, _ = idx.mliq(MLIQuery(q, 3))
        assert got == []

    def test_base_table_fetches_charged(self, indexed_db):
        # The refinement must pay page reads into the base file on top of
        # the directory traversal.
        db, idx = indexed_db
        q = make_random_query(d=3, seed=6)
        got, stats = idx.mliq(MLIQuery(q, 3))
        directory_pages = sum(
            idx.tree.supernode_page_count(n) for n in idx.tree.nodes()
        )
        if got:
            assert stats.pages_accessed > 0
            # At least one page beyond the (at most full) directory scan
            # or strictly fewer pages than the directory: either way the
            # accounting distinguishes the two stages.
            assert stats.pages_accessed != directory_pages or stats.objects_refined


class TestTIQ:
    def test_threshold_filtering_on_candidates(self, indexed_db):
        db, idx = indexed_db
        q = make_random_query(d=3, seed=7)
        got, _ = idx.tiq(ThresholdQuery(q, 0.1))
        for m in got:
            assert m.probability >= 0.1

    def test_subset_of_exact_answer(self, indexed_db):
        # Candidate-set normalisation can only overestimate posteriors
        # (fewer denominator terms), so with identical filtering the keys
        # form a superset-or-equal of the scan answer restricted to the
        # candidates; globally they remain comparable sets.
        db, idx = indexed_db
        q = make_random_query(d=3, seed=8)
        approx_keys = {m.key for m in idx.tiq(ThresholdQuery(q, 0.05))[0]}
        exact_keys = {m.key for m in scan_tiq(db, ThresholdQuery(q, 0.05))}
        # The filter can drop exact answers; inflation can add borderline
        # ones. Check agreement on the clear winners.
        clear = {
            m.key
            for m in scan_tiq(db, ThresholdQuery(q, 0.3))
        }
        assert clear & approx_keys == clear & exact_keys & approx_keys
