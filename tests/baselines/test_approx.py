"""Tests of the 95%-quantile rectangular approximation (Section 6)."""

import numpy as np
import pytest
from scipy import stats

from repro.baselines.approx import (
    DEFAULT_COVERAGE,
    quantile_rect,
    quantile_rects,
    quantile_z,
    rect_coverage_probability,
)
from repro.core.pfv import PFV


class TestQuantileZ:
    def test_familiar_value(self):
        assert quantile_z(0.95) == pytest.approx(1.959964, abs=1e-5)

    def test_inverse_relation(self):
        for cov in (0.5, 0.8, 0.95, 0.99):
            z = quantile_z(cov)
            assert rect_coverage_probability(z) == pytest.approx(cov, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            quantile_z(0.0)
        with pytest.raises(ValueError):
            quantile_z(1.0)


class TestQuantileRect:
    def test_interval_is_mu_pm_z_sigma(self):
        v = PFV([1.0, 2.0], [0.5, 0.1])
        r = quantile_rect(v)
        z = quantile_z(DEFAULT_COVERAGE)
        assert r.lo == pytest.approx([1.0 - z * 0.5, 2.0 - z * 0.1])
        assert r.hi == pytest.approx([1.0 + z * 0.5, 2.0 + z * 0.1])

    def test_per_dimension_coverage_is_95_percent(self):
        # Monte-Carlo check that the paper's construction covers ~95% of
        # re-observations per dimension.
        rng = np.random.default_rng(0)
        v = PFV([0.0], [0.7])
        r = quantile_rect(v)
        samples = rng.normal(0.0, 0.7, 20_000)
        inside = np.mean((samples >= r.lo[0]) & (samples <= r.hi[0]))
        assert inside == pytest.approx(0.95, abs=0.01)

    def test_joint_coverage_shrinks_with_dimensionality(self):
        # The reason the X-tree filter loses true answers in 27-d: the
        # joint coverage of independent 95% intervals is 0.95^d.
        d = 27
        per_dim = 0.95
        assert per_dim**d < 0.26

    def test_vectorised_matches_scalar(self):
        rng = np.random.default_rng(1)
        mu = rng.uniform(0, 1, (10, 4))
        sigma = rng.uniform(0.05, 0.5, (10, 4))
        lo, hi = quantile_rects(mu, sigma)
        for i in range(10):
            r = quantile_rect(PFV(mu[i], sigma[i]))
            assert lo[i] == pytest.approx(r.lo)
            assert hi[i] == pytest.approx(r.hi)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            quantile_rects(np.zeros((2, 3)), np.ones((3, 2)))

    def test_custom_coverage(self):
        v = PFV([0.0], [1.0])
        wide = quantile_rect(v, coverage=0.99)
        narrow = quantile_rect(v, coverage=0.5)
        assert wide.hi[0] > narrow.hi[0]
        assert narrow.hi[0] == pytest.approx(stats.norm.ppf(0.75), abs=1e-9)
