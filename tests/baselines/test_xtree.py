"""Tests of the X-tree's supernode mechanism and query correctness."""

import numpy as np
import pytest

from repro.baselines.rect import Rect
from repro.baselines.xtree import XTree


def random_rects(n, d, seed, extent=0.1):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 1, (n, d))
    return [Rect(lo[i], lo[i] + rng.uniform(0, extent, d)) for i in range(n)]


class TestSupernodes:
    def test_zero_overlap_threshold_forces_supernodes(self):
        # With max_overlap=0 any overlapping split is rejected, so heavily
        # overlapping data must produce supernodes.
        rng = np.random.default_rng(4)
        tree = XTree(dims=4, capacity=8, max_overlap=0.0, reinsert_fraction=0.0)
        for i in range(200):
            lo = rng.uniform(0, 0.5, 4)
            tree.insert(Rect(lo, lo + 0.5), i)
        assert tree.supernode_count > 0
        tree.check_invariants()
        assert len(tree) == 200

    def test_generous_threshold_splits_normally(self):
        tree = XTree(dims=2, capacity=8, max_overlap=1.0)
        for i, r in enumerate(random_rects(200, 2, 5)):
            tree.insert(r, i)
        assert tree.supernode_count == 0
        tree.check_invariants()

    def test_supernode_costs_multiple_pages(self):
        rng = np.random.default_rng(6)
        tree = XTree(dims=3, capacity=8, max_overlap=0.0, reinsert_fraction=0.0)
        for i in range(100):
            lo = rng.uniform(0, 0.3, 3)
            tree.insert(Rect(lo, lo + 0.7), i)
        assert tree.supernode_count > 0
        some_super = next(
            n for n in tree.nodes() if tree.supernode_page_count(n) > 1
        )
        tree.store.begin_query()
        tree.intersecting(Rect(np.zeros(3), np.ones(3)))
        # Every entry matches, every node is visited; supernode extra
        # pages must be charged.
        total_pages = sum(tree.supernode_page_count(n) for n in tree.nodes())
        assert tree.store.log.pages_accessed == total_pages
        assert tree.supernode_page_count(some_super) >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            XTree(dims=2, max_overlap=1.5)
        with pytest.raises(ValueError):
            XTree(dims=2, min_fanout=0.0)


class TestQueries:
    def test_range_matches_brute_force(self):
        rects = random_rects(300, 3, 7)
        tree = XTree(dims=3, capacity=8, max_overlap=0.1)
        for i, r in enumerate(rects):
            tree.insert(r, i)
        rng = np.random.default_rng(8)
        for _ in range(5):
            lo = rng.uniform(0, 1, 3)
            query = Rect(lo, lo + rng.uniform(0, 0.4, 3))
            got = sorted(e.payload for e in tree.intersecting(query))
            want = sorted(i for i, r in enumerate(rects) if r.intersects(query))
            assert got == want

    def test_knn_matches_brute_force(self):
        rects = random_rects(150, 2, 9)
        tree = XTree(dims=2, capacity=8, max_overlap=0.1)
        for i, r in enumerate(rects):
            tree.insert(r, i)
        point = np.array([0.4, 0.6])
        got = [d for d, _ in tree.knn(point, 5)]
        want = sorted(np.sqrt(r.min_dist_sq(point)) for r in rects)[:5]
        assert got == pytest.approx(want)
