"""Structural and correctness tests of the from-scratch R*-tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.rect import Rect
from repro.baselines.rtree import RStarTree


def random_rects(n, d, seed, extent=0.1):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 1, (n, d))
    return [Rect(lo[i], lo[i] + rng.uniform(0, extent, d)) for i in range(n)]


def build(rects, d, capacity=8, reinsert=0.3):
    tree = RStarTree(dims=d, capacity=capacity, reinsert_fraction=reinsert)
    for i, r in enumerate(rects):
        tree.insert(r, i)
    return tree


class TestStructure:
    @pytest.mark.parametrize("n", [0, 5, 40, 300])
    def test_invariants(self, n):
        tree = build(random_rects(n, 3, seed=n), 3)
        tree.check_invariants()
        assert len(tree) == n

    @given(
        n=st.integers(1, 150),
        d=st.integers(1, 4),
        seed=st.integers(0, 500),
        reinsert=st.sampled_from([0.0, 0.3]),
    )
    @settings(max_examples=25, deadline=None)
    def test_invariants_random(self, n, d, seed, reinsert):
        tree = build(random_rects(n, d, seed), d, reinsert=reinsert)
        tree.check_invariants()
        assert len(tree) == n

    def test_validation(self):
        with pytest.raises(ValueError):
            RStarTree(dims=0)
        with pytest.raises(ValueError):
            RStarTree(dims=2, capacity=3)
        with pytest.raises(ValueError):
            RStarTree(dims=2, reinsert_fraction=0.6)
        tree = RStarTree(dims=2)
        with pytest.raises(ValueError):
            tree.insert(Rect(np.zeros(3), np.ones(3)), 0)


class TestRangeQuery:
    @given(n=st.integers(1, 200), seed=st.integers(0, 300))
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force(self, n, seed):
        rects = random_rects(n, 2, seed)
        tree = build(rects, 2)
        rng = np.random.default_rng(seed + 1)
        lo = rng.uniform(0, 1, 2)
        query = Rect(lo, lo + rng.uniform(0, 0.5, 2))
        got = sorted(e.payload for e in tree.intersecting(query))
        want = sorted(i for i, r in enumerate(rects) if r.intersects(query))
        assert got == want

    def test_counts_page_accesses(self):
        rects = random_rects(100, 2, 9)
        tree = build(rects, 2)
        tree.store.begin_query()
        tree.intersecting(Rect(np.zeros(2), np.ones(2)))
        assert tree.store.log.pages_accessed >= 1

    def test_empty_tree(self):
        tree = RStarTree(dims=2)
        assert tree.intersecting(Rect(np.zeros(2), np.ones(2))) == []


class TestKnn:
    @given(n=st.integers(1, 150), k=st.integers(1, 10), seed=st.integers(0, 300))
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force(self, n, k, seed):
        rects = random_rects(n, 2, seed)
        tree = build(rects, 2)
        rng = np.random.default_rng(seed + 2)
        point = rng.uniform(0, 1, 2)
        got = tree.knn(point, k)
        brute = sorted(
            (np.sqrt(r.min_dist_sq(point)), i) for i, r in enumerate(rects)
        )[:k]
        assert len(got) == min(k, n)
        got_dists = [d for d, _ in got]
        want_dists = [d for d, _ in brute]
        assert got_dists == pytest.approx(want_dists)

    def test_zero_distance_inside(self):
        rects = [Rect(np.zeros(2), np.ones(2))]
        tree = build(rects, 2)
        dist, entry = tree.knn(np.array([0.5, 0.5]), 1)[0]
        assert dist == 0.0
        assert entry.payload == 0
