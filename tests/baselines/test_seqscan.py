"""Tests of the paged sequential-scan competitor."""

import pytest

from repro.baselines.seqscan import SequentialScanIndex
from repro.core.database import PFVDatabase
from repro.core.queries import MLIQuery, ThresholdQuery
from repro.core.scan import scan_mliq, scan_tiq
from repro.storage.buffer import BufferManager
from repro.storage.pagestore import PageStore

from tests.conftest import make_random_db, make_random_query


@pytest.fixture
def scan_index():
    db = make_random_db(n=200, d=3, seed=1)
    return db, SequentialScanIndex(db)


class TestCorrectness:
    def test_mliq_equals_in_memory_scan(self, scan_index):
        db, idx = scan_index
        q = make_random_query(d=3, seed=2)
        got, _ = idx.mliq(MLIQuery(q, 7))
        want = scan_mliq(db, MLIQuery(q, 7))
        assert [m.key for m in got] == [m.key for m in want]
        for a, b in zip(got, want):
            assert a.probability == pytest.approx(b.probability)

    def test_tiq_equals_in_memory_scan(self, scan_index):
        db, idx = scan_index
        q = make_random_query(d=3, seed=3)
        got, _ = idx.tiq(ThresholdQuery(q, 0.05))
        want = scan_tiq(db, ThresholdQuery(q, 0.05))
        assert [m.key for m in got] == [m.key for m in want]

    def test_empty_database_answers_empty(self):
        # Normalised edge-case semantics (repro.engine.spec): an empty
        # database is a valid zero-page source, not an error.
        idx = SequentialScanIndex(PFVDatabase())
        assert idx.file_pages == 0
        q = make_random_query(d=3, seed=9)
        matches, stats = idx._mliq_impl(MLIQuery(q, 3))
        assert matches == [] and stats.pages_accessed == 0
        matches, _ = idx._tiq_impl(ThresholdQuery(q, 0.1))
        assert matches == []
        batches, _ = idx._mliq_many_impl([MLIQuery(q, 2)] * 3)
        assert batches == [[], [], []]

    def test_mliq_many_matches_singles(self, scan_index):
        db, idx = scan_index
        mliqs = [MLIQuery(make_random_query(d=3, seed=50 + i), 5) for i in range(12)]
        batch, stats = idx.mliq_many(mliqs)
        for query, matches in zip(mliqs, batch):
            single, _ = idx.mliq(query)
            assert [m.key for m in single] == [m.key for m in matches]
            for a, b in zip(single, matches):
                assert a.probability == pytest.approx(b.probability, abs=1e-12)
        # The whole batch shares ONE sequential pass.
        assert stats.pages_accessed == idx.file_pages
        assert stats.objects_refined == len(db) * len(mliqs)

    def test_empty_batches(self, scan_index):
        _, idx = scan_index
        results, stats = idx.mliq_many([])
        assert results == [] and stats.pages_accessed == 0
        results, stats = idx.tiq_many([])
        assert results == [] and stats.pages_accessed == 0

    def test_tiq_many_matches_singles(self, scan_index):
        db, idx = scan_index
        tiqs = [
            ThresholdQuery(make_random_query(d=3, seed=80 + i), 0.1)
            for i in range(8)
        ]
        batch, stats = idx.tiq_many(tiqs)
        for query, matches in zip(tiqs, batch):
            single, _ = idx.tiq(query)
            assert [m.key for m in single] == [m.key for m in matches]
        # One density pass plus one report pass for the whole batch.
        assert stats.pages_accessed == 2 * idx.file_pages


class TestAccounting:
    def test_mliq_reads_file_once(self, scan_index):
        db, idx = scan_index
        q = make_random_query(d=3, seed=4)
        _, stats = idx.mliq(MLIQuery(q, 1))
        assert stats.pages_accessed == idx.file_pages
        assert stats.objects_refined == len(db)

    def test_tiq_reads_file_twice(self, scan_index):
        db, idx = scan_index
        q = make_random_query(d=3, seed=5)
        _, stats = idx.tiq(ThresholdQuery(q, 0.5))
        assert stats.pages_accessed == 2 * idx.file_pages
        # Densities are computed once; the second pass only re-reads.
        assert stats.objects_refined == len(db)

    def test_sequential_io_cheaper_than_random(self, scan_index):
        _, idx = scan_index
        q = make_random_query(d=3, seed=6)
        idx.store.cold_start()
        idx.store.buffer.reset_stats()
        _, stats = idx.mliq(MLIQuery(q, 1))
        random_cost = idx.store.cost_model.random_read_seconds(
            stats.page_faults
        )
        assert stats.io_seconds < random_cost

    def test_warm_cache_second_query_free_io(self):
        db = make_random_db(n=100, d=2, seed=7)
        store = PageStore(buffer=BufferManager(10_000))
        idx = SequentialScanIndex(db, page_store=store)
        q = make_random_query(d=2, seed=8)
        _, first = idx.mliq(MLIQuery(q, 1))
        _, second = idx.mliq(MLIQuery(q, 1))
        assert first.io_seconds > 0.0
        assert second.io_seconds == 0.0
        assert second.pages_accessed == first.pages_accessed

    def test_modeled_cpu_populated(self, scan_index):
        db, idx = scan_index
        q = make_random_query(d=3, seed=9)
        _, stats = idx.mliq(MLIQuery(q, 1))
        expected = idx.store.cost_model.modeled_cpu_seconds(
            len(db), idx.file_pages
        )
        assert stats.modeled_cpu_seconds == pytest.approx(expected)
