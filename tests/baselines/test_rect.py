"""Unit tests for feature-space rectangles."""

import numpy as np
import pytest

from repro.baselines.rect import Rect


def rect(lo, hi):
    return Rect(np.atleast_1d(np.asarray(lo, float)), np.atleast_1d(np.asarray(hi, float)))


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            rect([1.0], [0.0])
        with pytest.raises(ValueError):
            Rect(np.zeros((2, 2)), np.ones((2, 2)))

    def test_of_point(self):
        r = Rect.of_point(np.array([1.0, 2.0]))
        assert r.volume() == 0.0
        assert r.contains_point(np.array([1.0, 2.0]))

    def test_union_of(self):
        u = Rect.union_of([rect(0, 1), rect(2, 3)])
        assert u.lo[0] == 0.0 and u.hi[0] == 3.0
        with pytest.raises(ValueError):
            Rect.union_of([])

    def test_center(self):
        assert rect([0, 2], [2, 4]).center == pytest.approx([1.0, 3.0])

    def test_copy_independent(self):
        r = rect(0, 1)
        c = r.copy()
        c.extend(rect(5, 6))
        assert r.hi[0] == 1.0


class TestGeometry:
    def test_intersects(self):
        assert rect(0, 2).intersects(rect(1, 3))
        assert rect(0, 1).intersects(rect(1, 2))  # touching counts
        assert not rect(0, 1).intersects(rect(1.1, 2))

    def test_contains(self):
        assert rect(0, 3).contains_rect(rect(1, 2))
        assert not rect(1, 2).contains_rect(rect(0, 3))
        assert rect(0, 3).contains_point(np.array([1.5]))

    def test_volume_margin(self):
        r = rect([0, 0], [2, 3])
        assert r.volume() == pytest.approx(6.0)
        assert r.margin() == pytest.approx(5.0)

    def test_overlap_volume(self):
        a = rect([0, 0], [2, 2])
        b = rect([1, 1], [3, 3])
        assert a.overlap_volume(b) == pytest.approx(1.0)
        assert a.overlap_volume(rect([5, 5], [6, 6])) == 0.0

    def test_enlargement(self):
        a = rect([0, 0], [1, 1])
        assert a.enlargement(rect([0, 0], [1, 2])) == pytest.approx(1.0)
        assert a.enlargement(rect([0.2, 0.2], [0.8, 0.8])) == 0.0

    def test_min_dist_sq(self):
        r = rect([0, 0], [1, 1])
        assert r.min_dist_sq(np.array([0.5, 0.5])) == 0.0
        assert r.min_dist_sq(np.array([2.0, 0.5])) == pytest.approx(1.0)
        assert r.min_dist_sq(np.array([2.0, 2.0])) == pytest.approx(2.0)

    def test_equality(self):
        assert rect(0, 1) == rect(0, 1)
        assert rect(0, 1) != rect(0, 2)
        assert rect(0, 1).__eq__(3) is NotImplemented
