"""Tests of the conventional (weighted) Euclidean NN baseline."""

import numpy as np
import pytest

from repro.baselines.nn import (
    euclidean_distances,
    knn_euclidean,
    knn_weighted_euclidean,
)

from tests.conftest import make_random_db


class TestEuclidean:
    def test_distances_match_numpy(self, small_db):
        q = np.array([0.5, 0.5, 0.5])
        dist = euclidean_distances(small_db, q)
        want = np.linalg.norm(small_db.mu_matrix - q, axis=1)
        assert dist == pytest.approx(want)

    def test_knn_sorted_and_correct(self, small_db):
        q = np.array([0.5, 0.5, 0.5])
        result = knn_euclidean(small_db, q, 5)
        dists = [d for _, d in result]
        assert dists == sorted(dists)
        brute = sorted(
            zip(np.linalg.norm(small_db.mu_matrix - q, axis=1), small_db.keys())
        )[:5]
        assert [k for k, _ in result] == [k for _, k in brute]

    def test_exact_match_first(self, small_db):
        target = small_db[13]
        result = knn_euclidean(small_db, target.mu, 1)
        assert result[0][0] == target.key
        assert result[0][1] == pytest.approx(0.0)

    def test_k_validation(self, small_db):
        with pytest.raises(ValueError):
            knn_euclidean(small_db, np.zeros(3), 0)

    def test_query_shape_validation(self, small_db):
        with pytest.raises(ValueError):
            euclidean_distances(small_db, np.zeros(4))


class TestWeighted:
    def test_uniform_weights_equal_plain(self, small_db):
        q = np.array([0.3, 0.6, 0.9])
        plain = knn_euclidean(small_db, q, 4)
        weighted = knn_weighted_euclidean(small_db, q, np.ones(3), 4)
        assert [k for k, _ in plain] == [k for k, _ in weighted]

    def test_zero_weight_ignores_dimension(self):
        db = make_random_db(n=30, d=2, seed=3)
        q = np.array([0.5, 0.5])
        w = np.array([1.0, 0.0])
        result = knn_weighted_euclidean(db, q, w, 30)
        # Distances must depend only on dimension 0.
        for key, dist in result:
            idx = db.keys().index(key)
            assert dist == pytest.approx(abs(db.mu_matrix[idx, 0] - 0.5))

    def test_weight_validation(self, small_db):
        with pytest.raises(ValueError):
            knn_weighted_euclidean(small_db, np.zeros(3), np.ones(2), 1)
        with pytest.raises(ValueError):
            knn_weighted_euclidean(small_db, np.zeros(3), -np.ones(3), 1)
        with pytest.raises(ValueError):
            knn_weighted_euclidean(small_db, np.zeros(3), np.ones(3), 0)
