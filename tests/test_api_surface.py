"""Public-API snapshot of the unified engine surface.

``repro.engine`` is the seam everything else (CLI, evaluation runner,
benchmarks, future sharding/async serving) is built on, so its exported
names and call signatures are pinned here verbatim. A failure in this
file means the public surface changed: if that is intentional, update
the snapshot *and* the README "Query API" section (migration table,
deprecation policy) in the same commit.
"""

import inspect

import repro
import repro.cluster as cluster
import repro.engine as engine


def sig(obj) -> str:
    return str(inspect.signature(obj))


EXPECTED_ENGINE_EXPORTS = {
    "connect",
    "Session",
    "session_for",
    "MLIQ",
    "TIQ",
    "RankQuery",
    "ConsensusTopK",
    "ExpectedRank",
    "Insert",
    "Delete",
    "Query",
    "WriteSpec",
    "Spec",
    "ResultSet",
    "Plan",
    "Backend",
    "BackendAdapter",
    "PlanEstimate",
    "CapabilityError",
    "register_backend",
    "available_backends",
}

# Signatures of the callable surface, pinned exactly (the quoted
# annotations come from `from __future__ import annotations`).
EXPECTED_SIGNATURES = {
    "connect": "(source, backend: 'str' = 'auto', *, "
    "writable: 'bool' = False, **options) -> 'Session'",
    "session_for": "(index, name: 'str | None' = None, **options) "
    "-> 'Session'",
    "register_backend": "(name: 'str', factory: 'Callable[..., Backend]', "
    "description: 'str' = '', *, replace: 'bool' = False) -> 'None'",
    "available_backends": "() -> 'dict[str, str]'",
    "MLIQ": "(q: 'PFV', k: 'int' = 1) -> None",
    "TIQ": "(q: 'PFV', tau: 'float' = 0.5, eps: 'float' = 0.0) -> None",
    "RankQuery": "(q: 'PFV', k: 'int' = 1, "
    "min_mass: 'float | None' = None) -> None",
    "ConsensusTopK": "(q: 'PFV', k: 'int' = 1) -> None",
    "ExpectedRank": "(q: 'PFV', k: 'int' = 1) -> None",
    "Insert": "(v: 'PFV') -> None",
    "Delete": "(v: 'PFV') -> None",
}

EXPECTED_SESSION_METHODS = {
    "execute": "(self, query: 'Spec') -> 'ResultSet'",
    "execute_many": "(self, queries: 'Iterable[Spec]') -> 'ResultSet'",
    "explain": "(self, query: 'Query | Sequence[Query]', *, "
    "coalesce: 'object | None' = None) -> 'Plan'",
    "insert": "(self, v: 'PFV') -> 'None'",
    "insert_many": "(self, vectors: 'Iterable[PFV]') -> 'int'",
    "delete": "(self, v: 'PFV') -> 'bool'",
    "database": "(self) -> 'PFVDatabase'",
    "cold_start": "(self) -> 'None'",
    "flush": "(self) -> 'None'",
    "close": "(self) -> 'None'",
}


def test_engine_export_names_are_pinned():
    assert set(engine.__all__) == EXPECTED_ENGINE_EXPORTS
    for name in engine.__all__:
        assert hasattr(engine, name), f"__all__ names missing export {name}"


def test_engine_callable_signatures_are_pinned():
    for name, expected in EXPECTED_SIGNATURES.items():
        assert sig(getattr(engine, name)) == expected, (
            f"signature drift in repro.engine.{name}: "
            f"{sig(getattr(engine, name))!r}"
        )


def test_session_method_signatures_are_pinned():
    for name, expected in EXPECTED_SESSION_METHODS.items():
        method = getattr(engine.Session, name)
        assert sig(method) == expected, (
            f"signature drift in Session.{name}: {sig(method)!r}"
        )


def test_backend_protocol_members():
    # The capability-declaring protocol every backend implements.
    members = {
        name
        for name in ("run_mliq", "run_tiq", "run_ranked", "count", "estimate")
        if callable(getattr(engine.BackendAdapter, name, None))
    }
    assert members == {
        "run_mliq",
        "run_tiq",
        "run_ranked",
        "count",
        "estimate",
    }


def test_top_level_reexports():
    for name in (
        "connect",
        "Session",
        "session_for",
        "MLIQ",
        "TIQ",
        "RankQuery",
        "ConsensusTopK",
        "ExpectedRank",
        "Insert",
        "Delete",
        "ResultSet",
    ):
        assert getattr(repro, name) is getattr(engine, name)
        assert name in repro.__all__


def test_builtin_backends_registered():
    assert set(engine.available_backends()) >= {
        "tree",
        "disk",
        "seqscan",
        "xtree",
        "sharded",
    }


# ---------------------------------------------------------------------------
# repro.cluster: the sharded serving surface
# ---------------------------------------------------------------------------

EXPECTED_CLUSTER_EXPORTS = {
    "ClusterError",
    "ShardedBackend",
    "PARTITION_POLICIES",
    "ShardInfo",
    "ShardManifest",
    "build_shards",
    "load_manifest",
    "partition_database",
    "shard_of",
    "stable_shard_hash",
    "POOL_KINDS",
    "SerialPool",
    "ProcessPool",
    "make_pool",
    "reshard",
    "reshard_gc",
    "QueryServer",
    "SessionPool",
    "serve",
    "ServeClient",
    "RemoteAnswer",
    "RemoteError",
    "WireError",
    "spec_to_json",
    "spec_from_json",
    "pfv_to_json",
    "pfv_from_json",
    "load_jsonl",
    "dump_jsonl",
}

EXPECTED_CLUSTER_SIGNATURES = {
    "build_shards": "(db: 'PFVDatabase', n_shards: 'int', out_prefix, *, "
    "policy: 'str' = 'hash', page_size: 'int' = 8192, "
    "replicas: 'int' = 0) -> 'ShardManifest'",
    "load_manifest": "(path) -> 'ShardManifest'",
    "reshard": "(manifest_path, new_n_shards: 'int', *, "
    "policy: 'str | None' = None, page_size: 'int' = 8192, "
    "replicas: 'int | None' = None) -> 'ShardManifest'",
    "reshard_gc": "(manifest_path, *, dry_run: 'bool' = False) -> 'dict'",
    "partition_database": "(db: 'PFVDatabase', n_shards: 'int', "
    "policy: 'str' = 'hash') -> 'list[PFVDatabase]'",
    "shard_of": "(v: 'PFV', position: 'int', n_shards: 'int', "
    "policy: 'str') -> 'int'",
    "serve": "(session: 'Session', host: 'str' = '127.0.0.1', "
    "port: 'int' = 8631, *, verbose: 'bool' = False, "
    "session_factory: 'Callable[[], Session] | None' = None, "
    "pool_size: 'int' = 1, "
    "registry: 'MetricsRegistry | None' = None, "
    "slow_query_log: 'SlowQueryLog | str | None' = None, "
    "slow_query_ms: 'float' = 250.0) -> 'QueryServer'",
    "make_pool": "(kind: 'str', opener: 'Callable[[int], Any]', "
    "runner: 'Callable[[Any, Any], Any]', *, n_shards: 'int', "
    "workers: 'int | None' = None, attempts: 'int' = 1, "
    "backoff: 'float' = 0.05, "
    "failover: 'Callable[[Any, int], Any] | None' = None)",
}


def test_cluster_export_names_are_pinned():
    assert set(cluster.__all__) == EXPECTED_CLUSTER_EXPORTS
    for name in cluster.__all__:
        assert hasattr(cluster, name), f"__all__ names missing export {name}"


def test_cluster_callable_signatures_are_pinned():
    for name, expected in EXPECTED_CLUSTER_SIGNATURES.items():
        assert sig(getattr(cluster, name)) == expected, (
            f"signature drift in repro.cluster.{name}: "
            f"{sig(getattr(cluster, name))!r}"
        )


def test_importing_repro_registers_the_sharded_backend():
    # `import repro` alone must be enough for connect(backend="sharded").
    assert "sharded" in engine.available_backends()
    assert cluster.ShardedBackend is not None


def test_resultset_provenance_is_part_of_the_surface():
    # Composite backends attach per-shard (name, stats) pairs; the
    # attribute exists (empty) on every ResultSet.
    assert "provenance" in engine.ResultSet.__slots__


# ---------------------------------------------------------------------------
# Plan / cost-model pricing surface (format-v3 vectorized refinement)
# ---------------------------------------------------------------------------


def test_plan_estimate_carries_cpu_seconds():
    assert engine.PlanEstimate.__slots__ == (
        "pages",
        "io_seconds",
        "note",
        "cpu_seconds",
    )
    assert sig(engine.PlanEstimate.__init__) == (
        "(self, pages: 'int', io_seconds: 'float', note: 'str', "
        "cpu_seconds: 'float' = 0.0) -> 'None'"
    )


def test_plan_exposes_estimated_cpu_seconds():
    import dataclasses

    fields = {f.name for f in dataclasses.fields(engine.Plan)}
    assert "estimated_cpu_seconds" in fields
    assert "modeled CPU" in engine.Plan.describe.__doc__ or True
    # describe() renders the CPU estimate for the CLI's --explain.
    plan = engine.Plan(
        backend="tree",
        query_kind="mliq",
        n_queries=1,
        strategy="batched",
        lowering=(),
        estimated_pages=4,
        estimated_io_seconds=0.01,
        estimated_cpu_seconds=0.002,
        notes=(),
    )
    assert "modeled CPU" in plan.describe()


def test_cost_model_prices_vectorized_refinement():
    from repro.storage.costmodel import DiskCostModel

    assert sig(DiskCostModel.modeled_cpu_seconds) == (
        "(self, objects_refined: 'int', pages_accessed: 'int', *, "
        "vectorized: 'bool' = False) -> 'float'"
    )
    model = DiskCostModel()
    scalar = model.modeled_cpu_seconds(1000, 0)
    vectorized = model.modeled_cpu_seconds(1000, 0, vectorized=True)
    assert vectorized < scalar
    assert vectorized == 1000 * model.cpu_per_vectorized_refinement_seconds


def test_cost_model_prices_coalesced_batches():
    # The serving tier's explain() pricing: amortization is an Amdahl
    # curve in the shared fraction, saturating at 1/f (2x by default —
    # what execute_many measures).
    from repro.storage.costmodel import DiskCostModel

    model = DiskCostModel()
    assert model.coalesce_amortization(1) == 1.0
    a16 = model.coalesce_amortization(16)
    assert 1.0 < a16 < 1.0 / model.batch_shared_fraction
    assert model.coalesce_amortization(256) > a16  # monotone in batch
    assert model.coalesced_batch_seconds(1.0, 16) == 1.0 / a16
    assert model.expected_coalesce_wait_seconds(0.004) == 0.002


# ---------------------------------------------------------------------------
# repro.serve: the async serving tier
# ---------------------------------------------------------------------------

EXPECTED_SERVE_EXPORTS = {
    "AdmissionConfig",
    "AdmissionError",
    "AdmissionQueue",
    "AsyncQueryServer",
    "CoalesceConfig",
    "JsonlClient",
    "serve_async",
}


def test_serve_export_names_are_pinned():
    import repro.serve as serve

    assert set(serve.__all__) == EXPECTED_SERVE_EXPORTS
    for name in serve.__all__:
        assert hasattr(serve, name), f"__all__ names missing export {name}"


def test_serve_config_defaults_are_pinned():
    # The CLI flags (`repro serve --async`) document these defaults;
    # changing them must be a deliberate, test-visible act.
    from repro.serve import AdmissionConfig, CoalesceConfig

    admission = AdmissionConfig()
    assert admission.max_queue == 512
    assert admission.max_queue_per_client == 64
    assert admission.retry_after_seconds == 0.05
    coalesce = CoalesceConfig()
    assert coalesce.max_batch == 16
    assert coalesce.max_delay_seconds == 0.002
    assert coalesce.coalesce_reads and coalesce.coalesce_writes


def test_plan_exposes_coalesce_pricing_fields():
    import dataclasses

    fields = {f.name for f in dataclasses.fields(engine.Plan)}
    assert {
        "estimated_queue_seconds",
        "coalesce_batch",
        "coalesce_amortization",
    } <= fields
    plan = engine.Plan(
        backend="tree",
        query_kind="mliq",
        n_queries=1,
        strategy="batched",
        lowering=(),
        estimated_pages=4,
        estimated_io_seconds=0.01,
        estimated_cpu_seconds=0.002,
        notes=(),
        estimated_queue_seconds=0.001,
        coalesce_batch=16,
        coalesce_amortization=1.88,
    )
    assert "coalesce" in plan.describe()
