"""Unit tests for the 2006 testbed cost model."""

import pytest

from repro.storage.costmodel import DiskCostModel


class TestDiskTimes:
    def test_random_read_pays_seek_per_page(self):
        m = DiskCostModel()
        one = m.random_read_seconds(1)
        assert one == pytest.approx(
            m.seek_seconds + m.rotational_seconds + m.page_transfer_seconds
        )
        assert m.random_read_seconds(10) == pytest.approx(10 * one)

    def test_sequential_run_pays_one_seek(self):
        m = DiskCostModel()
        run = m.sequential_read_seconds(100)
        assert run == pytest.approx(
            m.seek_seconds + m.rotational_seconds + 100 * m.page_transfer_seconds
        )

    def test_sequential_beats_random_for_runs(self):
        m = DiskCostModel()
        assert m.sequential_read_seconds(50) < m.random_read_seconds(50)

    def test_zero_pages(self):
        m = DiskCostModel()
        assert m.sequential_read_seconds(0) == 0.0
        assert m.random_read_seconds(0) == 0.0

    def test_negative_pages_rejected(self):
        m = DiskCostModel()
        with pytest.raises(ValueError):
            m.random_read_seconds(-1)
        with pytest.raises(ValueError):
            m.sequential_read_seconds(-1)

    def test_transfer_time_scales_with_page_size(self):
        small = DiskCostModel(page_size=4096)
        large = DiskCostModel(page_size=8192)
        assert large.page_transfer_seconds == pytest.approx(
            2 * small.page_transfer_seconds
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskCostModel(seek_seconds=-1.0)
        with pytest.raises(ValueError):
            DiskCostModel(transfer_bytes_per_second=0)
        with pytest.raises(ValueError):
            DiskCostModel(page_size=0)
        with pytest.raises(ValueError):
            DiskCostModel(cpu_per_refinement_seconds=-1.0)


class TestModeledCpu:
    def test_linear_in_work(self):
        m = DiskCostModel()
        assert m.modeled_cpu_seconds(100, 10) == pytest.approx(
            100 * m.cpu_per_refinement_seconds + 10 * m.cpu_per_page_seconds
        )

    def test_zero_work(self):
        assert DiskCostModel().modeled_cpu_seconds(0, 0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DiskCostModel().modeled_cpu_seconds(-1, 0)
