"""Unit tests for the page layout / degree derivation."""

import pytest

from repro.storage.layout import PAGE_HEADER_BYTES, PageLayout


class TestCapacities:
    def test_leaf_entry_bytes(self):
        # 2 d float64 + 8-byte key.
        assert PageLayout(dims=10).leaf_entry_bytes == 10 * 16 + 8

    def test_inner_entry_bytes(self):
        # 4 d float64 bounds + pointer/cardinality.
        assert PageLayout(dims=10).inner_entry_bytes == 10 * 32 + 8

    def test_leaf_capacity_from_page_size(self):
        layout = PageLayout(dims=10, page_size=8192)
        expected = (8192 - PAGE_HEADER_BYTES) // (10 * 16 + 8)
        assert layout.leaf_capacity == expected

    def test_degree_is_half_leaf_capacity(self):
        layout = PageLayout(dims=27)
        assert layout.degree == layout.leaf_capacity // 2

    def test_paper_dimensionalities_fit(self):
        # Both datasets of the paper must produce usable trees.
        for d in (10, 27):
            layout = PageLayout(dims=d)
            assert layout.leaf_capacity >= 4
            assert layout.inner_capacity >= 4

    def test_page_too_small(self):
        with pytest.raises(ValueError):
            PageLayout(dims=64, page_size=256)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            PageLayout(dims=0)

    def test_sequential_file_pages(self):
        layout = PageLayout(dims=10)
        per_page = layout.leaf_capacity
        assert layout.pages_for_sequential_file(0) == 0
        assert layout.pages_for_sequential_file(1) == 1
        assert layout.pages_for_sequential_file(per_page) == 1
        assert layout.pages_for_sequential_file(per_page + 1) == 2

    def test_str(self):
        assert "PageLayout" in str(PageLayout(dims=3))
