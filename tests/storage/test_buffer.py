"""Unit tests for the LRU buffer manager."""

import pytest

from repro.storage.buffer import BufferManager


class TestLRU:
    def test_first_access_faults(self):
        buf = BufferManager(4)
        assert buf.access(1) is False
        assert buf.access(1) is True

    def test_eviction_order_is_lru(self):
        buf = BufferManager(2)
        buf.access(1)
        buf.access(2)
        buf.access(1)  # 1 is now most recent
        buf.access(3)  # evicts 2
        assert buf.contains(1)
        assert not buf.contains(2)
        assert buf.contains(3)

    def test_zero_capacity_always_faults(self):
        buf = BufferManager(0)
        assert buf.access(7) is False
        assert buf.access(7) is False
        assert buf.stats.faults == 2

    def test_capacity_respected(self):
        buf = BufferManager(3)
        for pid in range(10):
            buf.access(pid)
        assert buf.resident_pages == 3

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferManager(-1)


class TestStats:
    def test_counters(self):
        buf = BufferManager(2)
        buf.access(1)  # fault
        buf.access(1)  # hit
        buf.access(2)  # fault
        buf.access(3)  # fault + eviction
        s = buf.stats
        assert s.accesses == 4
        assert s.hits == 1
        assert s.faults == 3
        assert s.evictions == 1
        assert s.hit_ratio == pytest.approx(0.25)

    def test_hit_ratio_empty(self):
        assert BufferManager(2).stats.hit_ratio == 0.0

    def test_snapshot(self):
        buf = BufferManager(2)
        buf.access(1)
        snap = buf.stats.snapshot()
        assert snap == {
            "accesses": 1,
            "hits": 0,
            "faults": 1,
            "evictions": 0,
            "writebacks": 0,
        }

    def test_reset_stats(self):
        buf = BufferManager(2)
        buf.access(1)
        buf.reset_stats()
        assert buf.stats.accesses == 0


class TestColdStart:
    def test_cold_start_clears_residency(self):
        buf = BufferManager(4)
        buf.access(1)
        buf.cold_start()
        assert not buf.contains(1)
        assert buf.access(1) is False  # faults again

    def test_contains_does_not_count(self):
        buf = BufferManager(4)
        buf.contains(1)
        assert buf.stats.accesses == 0

    def test_invalidate(self):
        buf = BufferManager(4)
        buf.access(1)
        buf.invalidate(1)
        assert not buf.contains(1)

    def test_from_bytes_sizing(self):
        buf = BufferManager.from_bytes(50 * 1024 * 1024, 8192)
        assert buf.capacity_pages == 50 * 1024 * 1024 // 8192

    def test_from_bytes_bad_page_size(self):
        with pytest.raises(ValueError):
            BufferManager.from_bytes(1024, 0)


class TestEvictionListeners:
    def test_listener_fires_on_lru_eviction(self):
        buf = BufferManager(2)
        evicted = []
        buf.add_evict_listener(evicted.append)
        buf.access(1)
        buf.access(2)
        buf.access(3)  # evicts 1
        assert evicted == [1]

    def test_listener_fires_on_invalidate_and_cold_start(self):
        buf = BufferManager(4)
        evicted = []
        buf.add_evict_listener(evicted.append)
        buf.access(1)
        buf.access(2)
        buf.invalidate(1)
        assert evicted == [1]
        buf.invalidate(99)  # not resident: no callback
        assert evicted == [1]
        buf.cold_start()
        assert sorted(evicted) == [1, 2]

    def test_remove_listener_detaches(self):
        buf = BufferManager(1)
        evicted = []
        buf.add_evict_listener(evicted.append)
        buf.remove_evict_listener(evicted.append)
        buf.access(1)
        buf.access(2)  # evicts 1, but nobody is listening anymore
        assert evicted == []
        buf.remove_evict_listener(evicted.append)  # absent: no-op

    def test_no_listener_by_default(self):
        buf = BufferManager(1)
        buf.access(1)
        buf.access(2)  # evicts silently
        assert buf.stats.evictions == 1


class TestDirtyTracking:
    def test_write_marks_dirty(self):
        buf = BufferManager(4)
        buf.write(1)
        assert buf.is_dirty(1)
        assert buf.dirty_pages == {1}
        buf.access(2)
        assert not buf.is_dirty(2)

    def test_write_counts_as_access(self):
        buf = BufferManager(4)
        assert buf.write(1) is False  # fault
        assert buf.write(1) is True  # hit, stays dirty
        assert buf.stats.accesses == 2
        assert buf.is_dirty(1)

    def test_zero_capacity_write_never_dirty(self):
        # The page cannot become resident, so the dirty flag (a residency
        # attribute) must not be set; the caller keeps the image.
        buf = BufferManager(0)
        buf.write(1)
        assert not buf.is_dirty(1)
        assert buf.dirty_pages == set()

    def test_eviction_writes_back_exactly_once(self):
        buf = BufferManager(2)
        written_back = []
        buf.set_writeback(written_back.append)
        buf.write(1)
        buf.access(2)
        buf.access(3)  # evicts dirty page 1
        assert written_back == [1]
        assert buf.stats.writebacks == 1
        buf.access(4)  # evicts clean page 2: no write-back
        assert written_back == [1]
        # Page 1 faults back in clean; its next eviction is silent.
        buf.access(1)
        buf.access(5)
        assert written_back == [1]

    def test_writeback_fires_before_evict_listeners(self):
        buf = BufferManager(1)
        order = []
        buf.set_writeback(lambda pid: order.append(("writeback", pid)))
        buf.add_evict_listener(lambda pid: order.append(("evict", pid)))
        buf.write(1)
        buf.access(2)
        assert order == [("writeback", 1), ("evict", 1)]

    def test_invalidate_and_cold_start_write_back(self):
        buf = BufferManager(4)
        written_back = []
        buf.set_writeback(written_back.append)
        buf.write(1)
        buf.invalidate(1)
        assert written_back == [1]
        buf.write(2)
        buf.write(3)
        buf.cold_start()
        assert sorted(written_back) == [1, 2, 3]
        assert buf.dirty_pages == set()

    def test_mark_clean_suppresses_writeback(self):
        buf = BufferManager(1)
        written_back = []
        buf.set_writeback(written_back.append)
        buf.write(1)
        buf.mark_clean(1)
        buf.access(2)  # evicts 1, now clean
        assert written_back == []

    def test_mark_dirty_requires_residency(self):
        buf = BufferManager(2)
        with pytest.raises(KeyError):
            buf.mark_dirty(9)

    def test_dirty_without_writeback_callback_is_counted(self):
        buf = BufferManager(1)
        buf.write(1)
        buf.access(2)
        assert buf.stats.writebacks == 1  # no callback installed: no crash


class TestPinning:
    def test_pinned_page_skipped_by_eviction(self):
        buf = BufferManager(2)
        buf.access(1)
        buf.pin(1)
        buf.access(2)
        buf.access(3)  # LRU would be 1, but it is pinned: 2 goes instead
        assert buf.contains(1)
        assert not buf.contains(2)
        assert buf.contains(3)

    def test_unpin_restores_evictability(self):
        buf = BufferManager(2)
        buf.access(1)
        buf.pin(1)
        buf.access(2)
        buf.unpin(1)
        buf.access(3)  # now 1 is the legal LRU victim again
        assert not buf.contains(1)

    def test_pin_nesting_order_respected(self):
        buf = BufferManager(2)
        buf.access(1)
        buf.pin(1)
        buf.pin(1)
        buf.unpin(1)
        assert buf.pin_count(1) == 1
        buf.access(2)
        buf.access(3)  # still pinned once: not evicted
        assert buf.contains(1)
        buf.unpin(1)
        with pytest.raises(ValueError):
            buf.unpin(1)  # unpin below zero is an ordering bug

    def test_pin_requires_residency(self):
        buf = BufferManager(2)
        with pytest.raises(KeyError):
            buf.pin(7)

    def test_all_pinned_overflows_capacity(self):
        buf = BufferManager(2)
        buf.access(1)
        buf.access(2)
        buf.pin(1)
        buf.pin(2)
        buf.access(3)  # no legal victim: the buffer grows past capacity
        assert buf.resident_pages == 3
        assert buf.contains(1) and buf.contains(2) and buf.contains(3)

    def test_invalidate_pinned_raises(self):
        buf = BufferManager(2)
        buf.access(1)
        buf.pin(1)
        with pytest.raises(RuntimeError, match="pinned"):
            buf.invalidate(1)

    def test_pinned_dirty_page_survives_pressure_then_writes_back(self):
        buf = BufferManager(1)
        written_back = []
        buf.set_writeback(written_back.append)
        buf.write(1)
        buf.pin(1)
        buf.access(2)  # 1 is pinned: 2 joins over capacity
        assert written_back == []
        buf.unpin(1)
        buf.access(3)  # 1 evicts now (LRU among unpinned) and writes back
        assert written_back == [1]
