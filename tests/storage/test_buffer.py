"""Unit tests for the LRU buffer manager."""

import pytest

from repro.storage.buffer import BufferManager


class TestLRU:
    def test_first_access_faults(self):
        buf = BufferManager(4)
        assert buf.access(1) is False
        assert buf.access(1) is True

    def test_eviction_order_is_lru(self):
        buf = BufferManager(2)
        buf.access(1)
        buf.access(2)
        buf.access(1)  # 1 is now most recent
        buf.access(3)  # evicts 2
        assert buf.contains(1)
        assert not buf.contains(2)
        assert buf.contains(3)

    def test_zero_capacity_always_faults(self):
        buf = BufferManager(0)
        assert buf.access(7) is False
        assert buf.access(7) is False
        assert buf.stats.faults == 2

    def test_capacity_respected(self):
        buf = BufferManager(3)
        for pid in range(10):
            buf.access(pid)
        assert buf.resident_pages == 3

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferManager(-1)


class TestStats:
    def test_counters(self):
        buf = BufferManager(2)
        buf.access(1)  # fault
        buf.access(1)  # hit
        buf.access(2)  # fault
        buf.access(3)  # fault + eviction
        s = buf.stats
        assert s.accesses == 4
        assert s.hits == 1
        assert s.faults == 3
        assert s.evictions == 1
        assert s.hit_ratio == pytest.approx(0.25)

    def test_hit_ratio_empty(self):
        assert BufferManager(2).stats.hit_ratio == 0.0

    def test_snapshot(self):
        buf = BufferManager(2)
        buf.access(1)
        snap = buf.stats.snapshot()
        assert snap == {"accesses": 1, "hits": 0, "faults": 1, "evictions": 0}

    def test_reset_stats(self):
        buf = BufferManager(2)
        buf.access(1)
        buf.reset_stats()
        assert buf.stats.accesses == 0


class TestColdStart:
    def test_cold_start_clears_residency(self):
        buf = BufferManager(4)
        buf.access(1)
        buf.cold_start()
        assert not buf.contains(1)
        assert buf.access(1) is False  # faults again

    def test_contains_does_not_count(self):
        buf = BufferManager(4)
        buf.contains(1)
        assert buf.stats.accesses == 0

    def test_invalidate(self):
        buf = BufferManager(4)
        buf.access(1)
        buf.invalidate(1)
        assert not buf.contains(1)

    def test_from_bytes_sizing(self):
        buf = BufferManager.from_bytes(50 * 1024 * 1024, 8192)
        assert buf.capacity_pages == 50 * 1024 * 1024 // 8192

    def test_from_bytes_bad_page_size(self):
        with pytest.raises(ValueError):
            BufferManager.from_bytes(1024, 0)


class TestEvictionListeners:
    def test_listener_fires_on_lru_eviction(self):
        buf = BufferManager(2)
        evicted = []
        buf.add_evict_listener(evicted.append)
        buf.access(1)
        buf.access(2)
        buf.access(3)  # evicts 1
        assert evicted == [1]

    def test_listener_fires_on_invalidate_and_cold_start(self):
        buf = BufferManager(4)
        evicted = []
        buf.add_evict_listener(evicted.append)
        buf.access(1)
        buf.access(2)
        buf.invalidate(1)
        assert evicted == [1]
        buf.invalidate(99)  # not resident: no callback
        assert evicted == [1]
        buf.cold_start()
        assert sorted(evicted) == [1, 2]

    def test_remove_listener_detaches(self):
        buf = BufferManager(1)
        evicted = []
        buf.add_evict_listener(evicted.append)
        buf.remove_evict_listener(evicted.append)
        buf.access(1)
        buf.access(2)  # evicts 1, but nobody is listening anymore
        assert evicted == []
        buf.remove_evict_listener(evicted.append)  # absent: no-op

    def test_no_listener_by_default(self):
        buf = BufferManager(1)
        buf.access(1)
        buf.access(2)  # evicts silently
        assert buf.stats.evictions == 1
