"""Round-trip tests of the byte-level page encoding."""

import numpy as np
import pytest

from repro.core.pfv import PFV
from repro.storage.layout import PageLayout
from repro.storage.serializer import (
    COLUMNAR_LEAF_KIND,
    INNER_KIND,
    LEAF_KIND,
    decode_columnar_leaf_page,
    decode_inner_page,
    decode_leaf_page,
    encode_columnar_leaf_page,
    encode_inner_page,
    encode_leaf_page,
)


@pytest.fixture
def layout():
    return PageLayout(dims=3, page_size=2048)


def make_vectors(layout, n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        PFV(rng.uniform(0, 1, layout.dims), rng.uniform(0.01, 1, layout.dims), key=i)
        for i in range(n)
    ]


class TestLeafPages:
    def test_roundtrip(self, layout):
        vectors = make_vectors(layout, 5)
        page = encode_leaf_page(layout, 17, vectors, list(range(5)))
        assert len(page) == layout.page_size
        header, decoded, keys = decode_leaf_page(layout, page)
        assert header.page_id == 17
        assert header.kind == LEAF_KIND
        assert header.count == 5
        assert keys == list(range(5))
        for original, back in zip(vectors, decoded):
            assert np.allclose(original.mu, back.mu)
            assert np.allclose(original.sigma, back.sigma)

    def test_empty_page(self, layout):
        page = encode_leaf_page(layout, 3, [], [])
        header, decoded, keys = decode_leaf_page(layout, page)
        assert header.count == 0 and decoded == [] and keys == []

    def test_capacity_enforced(self, layout):
        too_many = make_vectors(layout, layout.leaf_capacity + 1)
        with pytest.raises(ValueError, match="exceed leaf capacity"):
            encode_leaf_page(
                layout, 0, too_many, list(range(len(too_many)))
            )

    def test_key_count_mismatch(self, layout):
        vectors = make_vectors(layout, 2)
        with pytest.raises(ValueError, match="one integer key"):
            encode_leaf_page(layout, 0, vectors, [1])

    def test_dimension_mismatch(self, layout):
        with pytest.raises(ValueError):
            encode_leaf_page(layout, 0, [PFV([0.0], [1.0])], [0])

    def test_negative_keys_roundtrip(self, layout):
        vectors = make_vectors(layout, 1)
        page = encode_leaf_page(layout, 0, vectors, [-12345])
        _, _, keys = decode_leaf_page(layout, page)
        assert keys == [-12345]

    def test_decode_wrong_size(self, layout):
        with pytest.raises(ValueError):
            decode_leaf_page(layout, b"\x00" * 10)

    def test_decode_wrong_kind(self, layout):
        page = encode_inner_page(layout, 0, 1, [], [], [])
        with pytest.raises(ValueError, match="not a leaf"):
            decode_leaf_page(layout, page)


class TestColumnarLeafPages:
    """The format-v3 page kind: header | mu block | sigma block | keys."""

    def make_columns(self, layout, n, seed=0):
        rng = np.random.default_rng(seed)
        mu = rng.uniform(0, 1, (n, layout.dims))
        sigma = rng.uniform(0.01, 1, (n, layout.dims))
        return mu, sigma, list(range(n))

    def test_roundtrip_bit_for_bit(self, layout):
        mu, sigma, slots = self.make_columns(layout, 6)
        page = encode_columnar_leaf_page(layout, 23, mu, sigma, slots)
        assert len(page) == layout.page_size
        header, mu2, sigma2, slots2 = decode_columnar_leaf_page(layout, page)
        assert header.page_id == 23
        assert header.kind == COLUMNAR_LEAF_KIND
        assert header.count == 6
        assert slots2 == slots
        # Column blocks round-trip bit for bit, not just approximately —
        # the query kernels compute straight on these views.
        assert mu2.tobytes() == np.ascontiguousarray(mu, "<f8").tobytes()
        assert sigma2.tobytes() == np.ascontiguousarray(sigma, "<f8").tobytes()

    def test_decoded_views_share_the_page_buffer(self, layout):
        mu, sigma, slots = self.make_columns(layout, 4)
        page = encode_columnar_leaf_page(layout, 0, mu, sigma, slots)
        _, mu2, sigma2, _ = decode_columnar_leaf_page(layout, page)
        assert not mu2.flags.writeable and not sigma2.flags.writeable
        assert mu2.base is not None  # a view of the page bytes, no copy

    def test_empty_page(self, layout):
        empty = np.zeros((0, layout.dims))
        page = encode_columnar_leaf_page(layout, 3, empty, empty, [])
        header, mu2, sigma2, slots2 = decode_columnar_leaf_page(layout, page)
        assert header.count == 0
        assert mu2.shape == (0, layout.dims) and slots2 == []

    def test_capacity_enforced(self, layout):
        n = layout.leaf_capacity + 1
        mu, sigma, slots = self.make_columns(layout, n)
        with pytest.raises(ValueError, match="exceed leaf capacity"):
            encode_columnar_leaf_page(layout, 0, mu, sigma, slots)

    def test_shape_mismatches_rejected(self, layout):
        mu, sigma, slots = self.make_columns(layout, 3)
        with pytest.raises(ValueError, match=r"\(n, d\)"):
            encode_columnar_leaf_page(layout, 0, mu, sigma[:2], slots)
        with pytest.raises(ValueError, match="layout expects"):
            encode_columnar_leaf_page(layout, 0, mu, sigma, slots[:2])

    def test_decode_wrong_kind(self, layout):
        page = encode_leaf_page(layout, 0, [], [])
        with pytest.raises(ValueError, match="not a columnar leaf"):
            decode_columnar_leaf_page(layout, page)

    def test_interleaved_and_columnar_agree(self, layout):
        """Both leaf encodings carry the same payload: decoding a v2
        page and a v3 page built from the same entries yields identical
        parameters and keys."""
        vectors = make_vectors(layout, 5, seed=9)
        slots = list(range(5))
        v2 = encode_leaf_page(layout, 7, vectors, slots)
        v3 = encode_columnar_leaf_page(
            layout,
            7,
            np.vstack([v.mu for v in vectors]),
            np.vstack([v.sigma for v in vectors]),
            slots,
        )
        _, entries, keys2 = decode_leaf_page(layout, v2)
        _, mu3, sigma3, keys3 = decode_columnar_leaf_page(layout, v3)
        assert keys2 == keys3
        assert np.vstack([e.mu for e in entries]).tobytes() == mu3.tobytes()
        assert (
            np.vstack([e.sigma for e in entries]).tobytes()
            == sigma3.tobytes()
        )


class TestInnerPages:
    def test_roundtrip(self, layout):
        rng = np.random.default_rng(1)
        bounds = [rng.uniform(0, 1, 4 * layout.dims) for _ in range(4)]
        children = [10, 11, 12, 13]
        cards = [5, 9, 2, 7]
        page = encode_inner_page(layout, 99, 2, bounds, children, cards)
        header, b2, c2, n2 = decode_inner_page(layout, page)
        assert header.kind == INNER_KIND
        assert header.level == 2
        assert c2 == children and n2 == cards
        for a, b in zip(bounds, b2):
            assert np.allclose(a, b)

    def test_alignment_validation(self, layout):
        with pytest.raises(ValueError, match="align"):
            encode_inner_page(layout, 0, 1, [np.zeros(4 * layout.dims)], [1], [])

    def test_bounds_length_validation(self, layout):
        with pytest.raises(ValueError, match="4\\*d"):
            encode_inner_page(layout, 0, 1, [np.zeros(7)], [1], [1])

    def test_capacity_enforced(self, layout):
        n = layout.inner_capacity + 1
        bounds = [np.zeros(4 * layout.dims)] * n
        with pytest.raises(ValueError, match="exceed inner capacity"):
            encode_inner_page(layout, 0, 1, bounds, list(range(n)), [1] * n)

    def test_decode_wrong_kind(self, layout):
        page = encode_leaf_page(layout, 0, [], [])
        with pytest.raises(ValueError, match="not an inner"):
            decode_inner_page(layout, page)


class TestHeaderEquality:
    def test_header_eq(self, layout):
        p1 = encode_leaf_page(layout, 5, [], [])
        h1, _, _ = decode_leaf_page(layout, p1)
        h2, _, _ = decode_leaf_page(layout, p1)
        assert h1 == h2
        assert "leaf" in repr(h1)
