"""Round-trip tests of the byte-level page encoding."""

import numpy as np
import pytest

from repro.core.pfv import PFV
from repro.storage.layout import PageLayout
from repro.storage.serializer import (
    INNER_KIND,
    LEAF_KIND,
    decode_inner_page,
    decode_leaf_page,
    encode_inner_page,
    encode_leaf_page,
)


@pytest.fixture
def layout():
    return PageLayout(dims=3, page_size=2048)


def make_vectors(layout, n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        PFV(rng.uniform(0, 1, layout.dims), rng.uniform(0.01, 1, layout.dims), key=i)
        for i in range(n)
    ]


class TestLeafPages:
    def test_roundtrip(self, layout):
        vectors = make_vectors(layout, 5)
        page = encode_leaf_page(layout, 17, vectors, list(range(5)))
        assert len(page) == layout.page_size
        header, decoded, keys = decode_leaf_page(layout, page)
        assert header.page_id == 17
        assert header.kind == LEAF_KIND
        assert header.count == 5
        assert keys == list(range(5))
        for original, back in zip(vectors, decoded):
            assert np.allclose(original.mu, back.mu)
            assert np.allclose(original.sigma, back.sigma)

    def test_empty_page(self, layout):
        page = encode_leaf_page(layout, 3, [], [])
        header, decoded, keys = decode_leaf_page(layout, page)
        assert header.count == 0 and decoded == [] and keys == []

    def test_capacity_enforced(self, layout):
        too_many = make_vectors(layout, layout.leaf_capacity + 1)
        with pytest.raises(ValueError, match="exceed leaf capacity"):
            encode_leaf_page(
                layout, 0, too_many, list(range(len(too_many)))
            )

    def test_key_count_mismatch(self, layout):
        vectors = make_vectors(layout, 2)
        with pytest.raises(ValueError, match="one integer key"):
            encode_leaf_page(layout, 0, vectors, [1])

    def test_dimension_mismatch(self, layout):
        with pytest.raises(ValueError):
            encode_leaf_page(layout, 0, [PFV([0.0], [1.0])], [0])

    def test_negative_keys_roundtrip(self, layout):
        vectors = make_vectors(layout, 1)
        page = encode_leaf_page(layout, 0, vectors, [-12345])
        _, _, keys = decode_leaf_page(layout, page)
        assert keys == [-12345]

    def test_decode_wrong_size(self, layout):
        with pytest.raises(ValueError):
            decode_leaf_page(layout, b"\x00" * 10)

    def test_decode_wrong_kind(self, layout):
        page = encode_inner_page(layout, 0, 1, [], [], [])
        with pytest.raises(ValueError, match="not a leaf"):
            decode_leaf_page(layout, page)


class TestInnerPages:
    def test_roundtrip(self, layout):
        rng = np.random.default_rng(1)
        bounds = [rng.uniform(0, 1, 4 * layout.dims) for _ in range(4)]
        children = [10, 11, 12, 13]
        cards = [5, 9, 2, 7]
        page = encode_inner_page(layout, 99, 2, bounds, children, cards)
        header, b2, c2, n2 = decode_inner_page(layout, page)
        assert header.kind == INNER_KIND
        assert header.level == 2
        assert c2 == children and n2 == cards
        for a, b in zip(bounds, b2):
            assert np.allclose(a, b)

    def test_alignment_validation(self, layout):
        with pytest.raises(ValueError, match="align"):
            encode_inner_page(layout, 0, 1, [np.zeros(4 * layout.dims)], [1], [])

    def test_bounds_length_validation(self, layout):
        with pytest.raises(ValueError, match="4\\*d"):
            encode_inner_page(layout, 0, 1, [np.zeros(7)], [1], [1])

    def test_capacity_enforced(self, layout):
        n = layout.inner_capacity + 1
        bounds = [np.zeros(4 * layout.dims)] * n
        with pytest.raises(ValueError, match="exceed inner capacity"):
            encode_inner_page(layout, 0, 1, bounds, list(range(n)), [1] * n)

    def test_decode_wrong_kind(self, layout):
        page = encode_leaf_page(layout, 0, [], [])
        with pytest.raises(ValueError, match="not an inner"):
            decode_inner_page(layout, page)


class TestHeaderEquality:
    def test_header_eq(self, layout):
        p1 = encode_leaf_page(layout, 5, [], [])
        h1, _, _ = decode_leaf_page(layout, p1)
        h2, _, _ = decode_leaf_page(layout, p1)
        assert h1 == h2
        assert "leaf" in repr(h1)
