"""Write-ahead log and crash-injection double: record-level guarantees.

The WAL's contract is byte-level: commits are atomic under torn writes
(a transaction missing any byte of its COMMIT record does not exist),
corruption is detected by checksums and discards the suspect suffix, and
a reset leaves a scannable empty log. The :class:`FaultyFile` double is
itself tested here — the durability property tests stand on it.
"""

import os

import pytest
from hypothesis import given, strategies as st

from repro.storage.fault import FaultInjector, FaultyFile, InjectedCrash
from repro.storage.wal import (
    REC_KEYS,
    REC_META,
    REC_PAGE,
    WAL_MAGIC,
    WALGroup,
    WriteAheadLog,
)


def wal_at(tmp_path, name="log.wal", **kwargs):
    return WriteAheadLog(str(tmp_path / name), **kwargs)


class TestRoundTrip:
    def test_committed_transactions_scan_back(self, tmp_path):
        wal = wal_at(tmp_path)
        wal.append_page(3, b"abc")
        wal.append(REC_KEYS, b'[["i", 7]]')
        wal.commit()
        wal.append(REC_META, b"meta-bytes")
        wal.commit()
        wal.close()
        txns = WriteAheadLog.scan(wal.path)
        assert len(txns) == 2
        assert txns[0] == [
            (REC_PAGE, b"\x03\x00\x00\x00abc"),
            (REC_KEYS, b'[["i", 7]]'),
        ]
        assert txns[1] == [(REC_META, b"meta-bytes")]

    def test_records_without_commit_are_invisible(self, tmp_path):
        wal = wal_at(tmp_path)
        wal.append_page(1, b"x" * 64)
        wal.sync()
        wal.close()
        assert WriteAheadLog.scan(wal.path) == []

    def test_missing_file_scans_empty(self, tmp_path):
        assert WriteAheadLog.scan(str(tmp_path / "absent.wal")) == []

    def test_mangled_magic_scans_empty(self, tmp_path):
        path = tmp_path / "bad.wal"
        path.write_bytes(b"NOTAWAL!" + b"\x00" * 100)
        assert WriteAheadLog.scan(str(path)) == []

    def test_reset_empties_the_log(self, tmp_path):
        wal = wal_at(tmp_path)
        wal.append_page(1, b"payload")
        wal.commit()
        assert not wal.is_empty
        wal.reset()
        assert wal.is_empty
        assert WriteAheadLog.scan(wal.path) == []
        # The log is append-ready again after a reset.
        wal.append_page(2, b"later")
        wal.commit()
        wal.close()
        assert WriteAheadLog.scan(wal.path) == [(
            [(REC_PAGE, b"\x02\x00\x00\x00later")]
        )]

    def test_reopen_appends_after_existing_records(self, tmp_path):
        wal = wal_at(tmp_path)
        wal.append_page(1, b"first")
        wal.commit()
        wal.close()
        wal = wal_at(tmp_path)
        wal.append_page(2, b"second")
        wal.commit()
        wal.close()
        assert len(WriteAheadLog.scan(wal.path)) == 2

    def test_truncate_to_rolls_back_unsealed_records(self, tmp_path):
        wal = wal_at(tmp_path)
        wal.append_page(1, b"kept")
        wal.commit()
        start = wal.tell()
        wal.append_page(2, b"rolled-back")
        wal.truncate_to(start)
        wal.append_page(3, b"next")
        wal.commit()
        wal.close()
        txns = WriteAheadLog.scan(wal.path)
        assert [t[0][1][4:] for t in txns] == [b"kept", b"next"]


class TestCorruption:
    @given(cut=st.integers(0, 400))
    def test_any_truncation_yields_a_committed_prefix(self, tmp_path_factory, cut):
        """A torn tail at *any* byte must never fabricate a transaction."""
        path = str(tmp_path_factory.mktemp("wal") / "torn.wal")
        wal = WriteAheadLog(path, fsync=False)
        payloads = [b"a" * 20, b"b" * 33, b"c" * 47]
        for p in payloads:
            wal.append_page(1, p)
            wal.commit()
        wal.close()
        blob = open(path, "rb").read()
        cut = min(cut, len(blob))
        with open(path, "wb") as f:
            f.write(blob[:cut])
        txns = WriteAheadLog.scan(path)
        assert len(txns) <= len(payloads)
        # Whatever survives is a prefix with intact payloads.
        for txn, expected in zip(txns, payloads):
            assert txn == [(REC_PAGE, b"\x01\x00\x00\x00" + expected)]

    @given(flip=st.integers(8, 120), bit=st.integers(0, 7))
    def test_bit_flips_discard_the_suffix(self, tmp_path_factory, flip, bit):
        path = str(tmp_path_factory.mktemp("wal") / "flip.wal")
        wal = WriteAheadLog(path, fsync=False)
        for p in (b"x" * 30, b"y" * 30, b"z" * 30):
            wal.append_page(2, p)
            wal.commit()
        wal.close()
        blob = bytearray(open(path, "rb").read())
        flip = min(flip, len(blob) - 1)
        blob[flip] ^= 1 << bit
        with open(path, "wb") as f:
            f.write(bytes(blob))
        txns = WriteAheadLog.scan(path)
        # Never more than the three real transactions, and any that do
        # scan back must carry an uncorrupted payload (the flipped byte's
        # transaction fails its checksum and takes the suffix with it).
        assert len(txns) <= 3
        for txn in txns:
            assert txn[0][1][4:] in (b"x" * 30, b"y" * 30, b"z" * 30)

    def test_garbage_length_field_reads_as_torn(self, tmp_path):
        path = tmp_path / "len.wal"
        path.write_bytes(WAL_MAGIC + b"\xff\xff\xff\xff" + b"\x01" + b"junk")
        assert WriteAheadLog.scan(str(path)) == []


class TestFaultyFile:
    def test_budget_tears_a_write_and_sticks(self, tmp_path):
        path = str(tmp_path / "f.bin")
        inj = FaultInjector(10)
        f = inj.open(path, "w+b")
        f.write(b"12345")  # 5 of 10
        with pytest.raises(InjectedCrash):
            f.write(b"abcdefgh")  # 8 > 5 remaining: tears after 5
        assert inj.crashed
        with pytest.raises(InjectedCrash):
            f.write(b"x")  # dead stays dead
        f.close()
        assert open(path, "rb").read() == b"12345abcde"

    def test_exact_budget_write_lands_then_next_dies(self, tmp_path):
        path = str(tmp_path / "g.bin")
        inj = FaultInjector(4)
        f = inj.open(path, "w+b")
        f.write(b"wxyz")
        with pytest.raises(InjectedCrash):
            f.write(b"!")
        f.close()
        assert open(path, "rb").read() == b"wxyz"

    def test_budget_is_shared_across_files(self, tmp_path):
        inj = FaultInjector(6)
        a = inj.open(str(tmp_path / "a.bin"), "w+b")
        b = inj.open(str(tmp_path / "b.bin"), "w+b")
        a.write(b"1234")
        with pytest.raises(InjectedCrash):
            b.write(b"5678")  # only 2 left in the shared budget
        a.close()
        b.close()
        assert open(str(tmp_path / "b.bin"), "rb").read() == b"56"

    def test_reads_and_seeks_are_free(self, tmp_path):
        path = str(tmp_path / "r.bin")
        with open(path, "wb") as f:
            f.write(b"hello world")
        inj = FaultInjector(0)
        f = inj.open(path, "rb")
        f.seek(6)
        assert f.read() == b"world"
        f.close()

    def test_wrapper_is_file_like_enough_for_the_wal(self, tmp_path):
        # fileno/flush passthrough: os.fsync on a FaultyFile must work,
        # because the WAL commits through it under injection.
        path = str(tmp_path / "w.wal")
        inj = FaultInjector(10_000)
        wal = WriteAheadLog(path, file_factory=inj.open)
        wal.append_page(1, b"payload")
        wal.commit()
        wal.close()
        assert len(WriteAheadLog.scan(path)) == 1

    def test_wal_commit_torn_by_injection_is_invisible(self, tmp_path):
        path = str(tmp_path / "t.wal")
        # Enough budget for the magic and the page record, not the COMMIT.
        wal_full = WriteAheadLog(str(tmp_path / "ref.wal"))
        wal_full.append_page(1, b"p" * 100)
        record_bytes = wal_full.tell() - len(WAL_MAGIC)
        wal_full.close()
        inj = FaultInjector(len(WAL_MAGIC) + record_bytes + 3)
        wal = WriteAheadLog(path, file_factory=inj.open)
        wal.append_page(1, b"p" * 100)
        with pytest.raises(InjectedCrash):
            wal.commit()
        assert WriteAheadLog.scan(path) == []

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(-1)

    def test_plain_faultyfile_wraps_real_handles(self, tmp_path):
        path = str(tmp_path / "p.bin")
        inj = FaultInjector(3)
        f = FaultyFile(open(path, "w+b"), inj)
        with pytest.raises(InjectedCrash):
            f.write(b"toolong")
        f.close()
        assert open(path, "rb").read() == b"too"


class TestWALGroup:
    def test_batch_is_one_transaction_with_deduped_pages(self, tmp_path):
        wal = wal_at(tmp_path)
        group = WALGroup()
        group.add_page(3, b"v1")
        group.add_page(5, b"other")
        group.add_page(3, b"v2")  # re-dirtied: latest image wins
        group.add_keys([["i", 1]])
        group.add_keys([["i", 2]])
        group.set_meta(b"header")
        assert group.n_pages == 2
        group.commit_to(wal)
        wal.close()
        txns = WriteAheadLog.scan(wal.path)
        assert len(txns) == 1  # one COMMIT seals the whole batch
        records = txns[0]
        pages = {r[1][:4]: r[1][4:] for r in records if r[0] == REC_PAGE}
        assert pages == {
            b"\x03\x00\x00\x00": b"v2",
            b"\x05\x00\x00\x00": b"other",
        }
        keys = [r for r in records if r[0] == REC_KEYS]
        assert keys == [(REC_KEYS, b'[["i", 1], ["i", 2]]')]
        assert records[-1] == (REC_META, b"header")

    def test_commit_requires_meta(self, tmp_path):
        wal = wal_at(tmp_path)
        group = WALGroup()
        group.add_page(1, b"x")
        with pytest.raises(ValueError, match="META"):
            group.commit_to(wal)
        wal.close()
        # Nothing reached the log, not even unsealed records.
        assert os.path.getsize(wal.path) == len(WAL_MAGIC)

    def test_emptiness_and_counters(self, tmp_path):
        group = WALGroup()
        assert group.is_empty
        group.add_page(1, b"x")
        assert not group.is_empty and group.n_pages == 1

    def test_torn_group_commit_is_invisible_whole(self, tmp_path):
        """A crash anywhere inside the batched append discards the
        *entire* batch — recovery never sees a partial group."""
        # Measure the full group's byte footprint first.
        ref = wal_at(tmp_path, "ref.wal")
        group = WALGroup()
        for pid in range(4):
            group.add_page(pid, bytes([pid]) * 50)
        group.set_meta(b"m" * 30)
        group.commit_to(ref)
        footprint = ref.tell() - len(WAL_MAGIC)
        ref.close()
        # Now crash at every prefix of that footprint (minus the very
        # end): scan must come back empty every time.
        for budget in range(0, footprint, 7):
            path = str(tmp_path / f"torn-{budget}.wal")
            inj = FaultInjector(len(WAL_MAGIC) + budget)
            wal = WriteAheadLog(path, file_factory=inj.open)
            regroup = WALGroup()
            for pid in range(4):
                regroup.add_page(pid, bytes([pid]) * 50)
            regroup.set_meta(b"m" * 30)
            with pytest.raises(InjectedCrash):
                regroup.commit_to(wal)
            assert WriteAheadLog.scan(path) == []
