"""Unit tests for the page store and its access accounting."""

import pytest

from repro.storage.buffer import BufferManager
from repro.storage.costmodel import DiskCostModel
from repro.storage.pagestore import PageStore


class TestAllocation:
    def test_allocate_unique_ids(self):
        store = PageStore()
        ids = {store.allocate() for _ in range(100)}
        assert len(ids) == 100
        assert store.allocated_pages == 100

    def test_free(self):
        store = PageStore()
        pid = store.allocate()
        store.free(pid)
        assert store.allocated_pages == 0
        with pytest.raises(KeyError):
            store.read(pid)

    def test_read_unallocated(self):
        with pytest.raises(KeyError):
            PageStore().read(42)


class TestAccounting:
    def make_store(self, capacity=4):
        return PageStore(
            buffer=BufferManager(capacity), cost_model=DiskCostModel()
        )

    def test_read_counts_access_and_fault(self):
        store = self.make_store()
        pid = store.allocate()
        store.read(pid)
        assert store.log.pages_accessed == 1
        assert store.log.page_faults == 1
        store.read(pid)  # buffered now
        assert store.log.pages_accessed == 2
        assert store.log.page_faults == 1

    def test_fault_costs_random_io(self):
        store = self.make_store()
        pid = store.allocate()
        store.read(pid)
        assert store.log.io_seconds == pytest.approx(
            store.cost_model.random_read_seconds(1)
        )
        store.read(pid)
        assert store.log.io_seconds == pytest.approx(
            store.cost_model.random_read_seconds(1)
        )  # hits are free

    def test_sequential_run_accounting(self):
        store = self.make_store(capacity=100)
        pages = [store.allocate() for _ in range(10)]
        store.read_sequential_run(pages)
        assert store.log.pages_accessed == 10
        assert store.log.page_faults == 10
        assert store.log.io_seconds == pytest.approx(
            store.cost_model.sequential_read_seconds(10)
        )
        # Second run is fully buffered: accesses count, no new IO.
        store.read_sequential_run(pages)
        assert store.log.pages_accessed == 20
        assert store.log.page_faults == 10

    def test_sequential_run_partial_residency(self):
        store = self.make_store(capacity=100)
        pages = [store.allocate() for _ in range(6)]
        store.read(pages[0])
        before = store.log.io_seconds
        store.read_sequential_run(pages)
        # Only the five non-resident pages transfer.
        assert store.log.io_seconds - before == pytest.approx(
            store.cost_model.sequential_read_seconds(5)
        )

    def test_begin_query_resets_log(self):
        store = self.make_store()
        pid = store.allocate()
        store.read(pid)
        store.begin_query()
        assert store.log.pages_accessed == 0
        assert store.log.io_seconds == 0.0

    def test_cold_start_forces_faults_again(self):
        store = self.make_store()
        pid = store.allocate()
        store.read(pid)
        store.cold_start()
        store.begin_query()
        store.read(pid)
        assert store.log.page_faults == 1

    def test_repr(self):
        assert "PageStore" in repr(self.make_store())
