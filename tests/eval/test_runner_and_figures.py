"""Integration tests of the experiment harness at miniature scale.

The real figure runs live in benchmarks/; these tests pin the harness
mechanics (batching, cold starts, normalisation, report formatting) and
the qualitative shape of both figures on tiny datasets so regressions
surface in seconds.
"""

import numpy as np
import pytest

from repro.baselines.seqscan import SequentialScanIndex
from repro.baselines.xtree_pfv import XTreePFVIndex
from repro.data.histograms import color_histogram_dataset
from repro.data.workload import identification_workload
from repro.eval.figures import dataset1, dataset2, figure6, figure7, make_page_store
from repro.eval.report import format_figure6, format_figure7, format_table
from repro.eval.runner import run_mliq_batch, run_tiq_batch
from repro.gausstree.bulkload import bulk_load


@pytest.fixture(scope="module")
def mini_db():
    return color_histogram_dataset(n=600)


@pytest.fixture(scope="module")
def mini_workload(mini_db):
    return identification_workload(mini_db, 15, seed=3)


class TestRunner:
    def test_mliq_batch_totals(self, mini_db, mini_workload):
        idx = SequentialScanIndex(mini_db, page_store=make_page_store(27))
        batch = run_mliq_batch(idx, mini_workload, k=1)
        assert batch.queries == 15
        assert batch.totals.pages_accessed == 15 * idx.file_pages
        assert batch.effectiveness is not None
        assert 0.0 <= batch.effectiveness.recall <= 1.0

    def test_tiq_batch(self, mini_db, mini_workload):
        idx = SequentialScanIndex(mini_db, page_store=make_page_store(27))
        batch = run_tiq_batch(idx, mini_workload, p_theta=0.5)
        assert batch.query_kind == "TIQ(P=0.5)"
        assert batch.totals.pages_accessed == 2 * 15 * idx.file_pages

    def test_cold_start_applied(self, mini_db, mini_workload):
        store = make_page_store(27)
        idx = SequentialScanIndex(mini_db, page_store=store)
        run_mliq_batch(idx, mini_workload, k=1)
        first = store.buffer.stats.snapshot()
        run_mliq_batch(idx, mini_workload, k=1)
        # Second batch cold-starts: it faults the file again.
        assert store.buffer.stats.faults > first["faults"]

    def test_summary_keys(self, mini_db, mini_workload):
        idx = SequentialScanIndex(mini_db, page_store=make_page_store(27))
        batch = run_mliq_batch(idx, mini_workload, k=1)
        summary = batch.summary()
        for key in ("pages_accessed", "cpu_seconds", "precision", "recall"):
            assert key in summary

    def test_empty_workload_rejected(self, mini_db):
        idx = SequentialScanIndex(mini_db, page_store=make_page_store(27))
        with pytest.raises(ValueError):
            run_mliq_batch(idx, [], k=1)


class TestFigure6:
    def test_shape_on_mini_ds1(self, mini_db, mini_workload):
        rows = figure6(mini_db, mini_workload, multiples=(1, 3, 9))
        assert [r.multiple for r in rows] == [1, 3, 9]
        # MLIQ dominates NN at the exact result size (the paper's point).
        assert rows[0].mliq.recall > rows[0].nn.recall
        # Recall is monotone in the result multiple for both methods.
        assert rows[2].nn.recall >= rows[0].nn.recall
        assert rows[2].mliq.recall >= rows[0].mliq.recall
        # Precision decays with the multiple.
        assert rows[2].nn.precision <= rows[0].nn.precision + 1e-12

    def test_report_formatting(self, mini_db, mini_workload):
        rows = figure6(mini_db, mini_workload, multiples=(1, 2))
        text = format_figure6(rows, "t")
        assert "NN prec%" in text and "x2" in text


class TestFigure7:
    def test_grid_on_mini_ds1(self, mini_db, mini_workload):
        cells = figure7(mini_db, mini_workload, thresholds=(0.8,))
        methods = {c.method for c in cells}
        assert methods == {"G-Tree", "X-Tree", "Seq.File"}
        by = {(c.method, c.query_kind): c for c in cells}
        base = by[("Seq.File", "1-MLIQ")]
        assert base.pages_percent == pytest.approx(100.0)
        assert base.overall_percent == pytest.approx(100.0)
        # The headline of the paper: the Gauss-tree reads fewer pages.
        assert by[("G-Tree", "TIQ(P=0.8)")].pages_percent < 100.0

    def test_report_formatting(self, mini_db, mini_workload):
        cells = figure7(mini_db, mini_workload, thresholds=(0.8,))
        text = format_figure7(cells)
        assert "pages %" in text and "Seq.File" in text


class TestDatasetBuilders:
    def test_dataset1_scaling(self):
        db = dataset1(scale=0.05)
        assert len(db) == max(500, round(10_987 * 0.05))
        assert db.dims == 27

    def test_dataset2_scaling(self):
        db = dataset2(scale=0.02)
        assert len(db) == 2000
        assert db.dims == 10


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["a", "b"], [["x", 1.234], ["yy", 10.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.2" in text and "10.0" in text
