"""Tests of precision/recall scoring."""

import pytest

from repro.eval.metrics import precision_recall


class TestPrecisionRecall:
    def test_perfect(self):
        pr = precision_recall([[1], [2], [3]], [1, 2, 3])
        assert pr.precision == 1.0
        assert pr.recall == 1.0
        assert pr.hits == 3

    def test_single_relevant_among_larger_results(self):
        # One relevant object, result size 4: precision = recall / 4.
        pr = precision_recall([[9, 1, 8, 7], [2, 5, 6, 4]], [1, 3])
        assert pr.recall == pytest.approx(0.5)
        assert pr.precision == pytest.approx(1 / 8)

    def test_empty_result_sets(self):
        pr = precision_recall([[], []], [1, 2])
        assert pr.recall == 0.0
        assert pr.precision == 0.0

    def test_ragged_results(self):
        pr = precision_recall([[1], [], [3, 4]], [1, 2, 3])
        assert pr.hits == 2
        assert pr.precision == pytest.approx(2 / 3)
        assert pr.result_size == 2

    def test_as_percent(self):
        pr = precision_recall([[1]], [1])
        assert pr.as_percent() == (100.0, 100.0)

    def test_at_result_size_one_precision_equals_recall(self):
        # The paper's statement for NN/MLIQ at the exact result size.
        pr = precision_recall([[1], [9], [3]], [1, 2, 3])
        assert pr.precision == pr.recall

    def test_validation(self):
        with pytest.raises(ValueError):
            precision_recall([[1]], [1, 2])
        with pytest.raises(ValueError):
            precision_recall([], [])
