"""Unit tests for the pfv database container."""

import numpy as np
import pytest

from repro.core.database import PFVDatabase
from repro.core.joint import SigmaRule
from repro.core.pfv import PFV


class TestMutation:
    def test_add_returns_row_ids(self):
        db = PFVDatabase()
        assert db.add(PFV([0.0], [1.0], key="a")) == 0
        assert db.add(PFV([1.0], [1.0], key="b")) == 1
        assert len(db) == 2

    def test_dimension_enforced(self):
        db = PFVDatabase([PFV([0.0, 0.0], [1.0, 1.0])])
        with pytest.raises(ValueError, match="dimension mismatch"):
            db.add(PFV([0.0], [1.0]))

    def test_extend(self):
        db = PFVDatabase()
        db.extend(PFV([float(i)], [1.0], key=i) for i in range(5))
        assert len(db) == 5
        assert db.keys() == list(range(5))

    def test_matrices_track_mutation(self):
        db = PFVDatabase([PFV([1.0], [0.5], key=0)])
        assert db.mu_matrix.shape == (1, 1)
        db.add(PFV([2.0], [0.25], key=1))
        assert db.mu_matrix.shape == (2, 1)
        assert db.sigma_matrix[1, 0] == 0.25


class TestAccessors:
    def test_matrices_match_vectors(self, small_db):
        mu = small_db.mu_matrix
        sigma = small_db.sigma_matrix
        for i, v in enumerate(small_db):
            assert np.array_equal(mu[i], v.mu)
            assert np.array_equal(sigma[i], v.sigma)

    def test_empty_database_errors(self):
        db = PFVDatabase()
        with pytest.raises(ValueError):
            _ = db.dims
        with pytest.raises(ValueError):
            _ = db.mu_matrix
        with pytest.raises(ValueError):
            _ = db.sigma_matrix

    def test_indexing_and_iteration(self, small_db):
        assert small_db[0] is small_db.vectors[0]
        assert list(small_db)[:3] == list(small_db.vectors[:3])

    def test_sigma_rule_default_and_custom(self):
        assert PFVDatabase().sigma_rule is SigmaRule.CONVOLUTION
        db = PFVDatabase(sigma_rule=SigmaRule.PAPER)
        assert db.sigma_rule is SigmaRule.PAPER

    def test_repr(self, small_db):
        assert "n=60" in repr(small_db)
