"""Property-based tests of Section 4's model properties 1-4.

The paper summarises (without formal proof) four properties of the
Gaussian uncertainty model; this module turns each into an executable
check over randomized databases:

1. retrieved probabilities of a TIQ / k-MLIQ never sum above 100%;
2. identification probability decreases when the uncertainty of a
   well-matching query or database object increases;
3. for sigma -> infinity the model becomes maximally indifferent
   (posterior -> 1/n);
4. for quite disjoint Gaussians the probability is close to 0, and there
   it may *increase* (up to 1/n) with growing uncertainty.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bayes import identification_posteriors
from repro.core.database import PFVDatabase
from repro.core.pfv import PFV
from repro.core.queries import MLIQuery, ThresholdQuery
from repro.core.scan import scan_mliq, scan_tiq

from tests.conftest import make_random_db, make_random_query


@st.composite
def db_and_query(draw):
    n = draw(st.integers(5, 40))
    d = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 10_000))
    qseed = draw(st.integers(0, 10_000))
    return make_random_db(n=n, d=d, seed=seed), make_random_query(d=d, seed=qseed)


class TestProperty1ProbabilityBudget:
    @given(db_and_query(), st.integers(1, 10))
    @settings(max_examples=25, deadline=None)
    def test_mliq_probabilities_sum_below_one(self, dbq, k):
        db, q = dbq
        matches = scan_mliq(db, MLIQuery(q, k))
        assert sum(m.probability for m in matches) <= 1.0 + 1e-9

    @given(db_and_query(), st.floats(0.0, 1.0))
    @settings(max_examples=25, deadline=None)
    def test_tiq_probabilities_sum_below_one(self, dbq, p_theta):
        db, q = dbq
        matches = scan_tiq(db, ThresholdQuery(q, p_theta))
        assert sum(m.probability for m in matches) <= 1.0 + 1e-9


class TestProperty2UncertaintyDecreasesConfidence:
    def test_inflating_matching_object_sigma_lowers_posterior(self):
        # A query sitting exactly on object 0, far from the decoys.
        target = PFV([0.0, 0.0], [0.1, 0.1], key=0)
        decoys = [PFV([3.0, 3.0], [0.5, 0.5], key=1), PFV([-3.0, 2.0], [0.5, 0.5], key=2)]
        q = PFV([0.0, 0.0], [0.1, 0.1])
        posteriors = []
        for scale in (1.0, 3.0, 10.0, 30.0):
            db = PFVDatabase(
                [PFV(target.mu, target.sigma * scale, key=0), *decoys]
            )
            posteriors.append(identification_posteriors(db, q)[0])
        assert posteriors == sorted(posteriors, reverse=True)

    def test_inflating_query_sigma_lowers_posterior(self):
        db = PFVDatabase(
            [
                PFV([0.0, 0.0], [0.1, 0.1], key=0),
                PFV([3.0, 3.0], [0.5, 0.5], key=1),
                PFV([-3.0, 2.0], [0.5, 0.5], key=2),
            ]
        )
        posteriors = []
        for scale in (1.0, 3.0, 10.0, 30.0):
            q = PFV([0.0, 0.0], np.array([0.1, 0.1]) * scale)
            posteriors.append(identification_posteriors(db, q)[0])
        assert posteriors == sorted(posteriors, reverse=True)


class TestProperty3IndifferenceLimit:
    @given(st.integers(2, 30), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_huge_query_sigma_gives_uniform(self, n, seed):
        db = make_random_db(n=n, d=2, seed=seed)
        q = PFV([0.5, 0.5], [1e6, 1e6])
        post = identification_posteriors(db, q)
        assert post == pytest.approx(np.full(n, 1.0 / n), rel=1e-3)

    def test_huge_object_sigmas_give_uniform(self):
        n = 7
        db = PFVDatabase(
            [PFV([float(i), 0.0], [1e6, 1e6], key=i) for i in range(n)]
        )
        q = PFV([2.0, 0.0], [0.2, 0.2])
        post = identification_posteriors(db, q)
        assert post == pytest.approx(np.full(n, 1.0 / n), rel=1e-3)


class TestProperty4DisjointGaussians:
    def test_disjoint_probability_near_zero(self):
        db = PFVDatabase(
            [
                PFV([0.0], [0.05], key=0),  # matches the query
                PFV([10.0], [0.05], key=1),  # quite disjoint
            ]
        )
        q = PFV([0.0], [0.05])
        post = identification_posteriors(db, q)
        assert post[1] < 1e-12

    def test_disjoint_probability_increases_with_uncertainty(self):
        # Growing the disjoint object's sigma de-excludes it: while the
        # sigma stays below the separation, the posterior climbs (the
        # paper's "only in this case ... slightly increases") yet stays
        # far below the matching companion's.
        q = PFV([0.0], [0.05])
        match = PFV([0.0], [0.05], key=0)
        previous = -1.0
        for sigma in (0.05, 0.5, 2.0, 5.0, 10.0):
            db = PFVDatabase([match, PFV([10.0], [sigma], key=1)])
            p = identification_posteriors(db, q)[1]
            assert p >= previous - 1e-15
            assert p <= 0.5  # never beyond 1/n while the match is certain
            previous = p
        assert previous < 0.05  # still "slight"

    def test_everything_uncertain_reaches_the_1_over_n_ceiling(self):
        # The ceiling of Property 4 is attained when the competitor is
        # equally unsure: two objects, both with huge sigma -> 1/2 each.
        q = PFV([0.0], [0.05])
        db = PFVDatabase(
            [PFV([0.0], [1e5], key=0), PFV([10.0], [1e5], key=1)]
        )
        post = identification_posteriors(db, q)
        assert post == pytest.approx([0.5, 0.5], rel=1e-3)
