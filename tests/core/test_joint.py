"""Tests of Lemma 1: the joint density of two probabilistic features.

The central check integrates the product of two Gaussian pdfs numerically
(scipy.quad) and compares it with the closed form — under the exact
CONVOLUTION rule the two must agree to quadrature precision, which is the
strongest validation of the lemma (and pins down the paper's sigma-vs-
variance notational slip documented in DESIGN.md).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import integrate, stats

from repro.core.joint import (
    SigmaRule,
    combine_sigma,
    joint_density,
    joint_density_1d,
    log_joint_density,
    log_joint_density_1d,
    log_joint_density_batch,
)
from repro.core.pfv import PFV


def overlap_integral(mu_v, sigma_v, mu_q, sigma_q):
    """Numerical integral of N_{mu_v,sigma_v}(x) * N_{mu_q,sigma_q}(x).

    The product of two Gaussian pdfs is itself proportional to a Gaussian
    centred at the precision-weighted mean; integrating tightly around
    that centre keeps the quadrature from missing a narrow spike.
    """
    f = lambda x: stats.norm.pdf(x, mu_v, sigma_v) * stats.norm.pdf(x, mu_q, sigma_q)
    wv, wq = 1.0 / sigma_v**2, 1.0 / sigma_q**2
    center = (wv * mu_v + wq * mu_q) / (wv + wq)
    width = 1.0 / math.sqrt(wv + wq)
    value, _ = integrate.quad(f, center - 30 * width, center + 30 * width, limit=200)
    return value


class TestLemma1:
    @given(
        mu_v=st.floats(-3, 3),
        sigma_v=st.floats(0.05, 2.0),
        mu_q=st.floats(-3, 3),
        sigma_q=st.floats(0.05, 2.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_convolution_rule_matches_quadrature(
        self, mu_v, sigma_v, mu_q, sigma_q
    ):
        closed = joint_density_1d(
            mu_v, sigma_v, mu_q, sigma_q, SigmaRule.CONVOLUTION
        )
        numeric = overlap_integral(mu_v, sigma_v, mu_q, sigma_q)
        assert closed == pytest.approx(numeric, rel=1e-6, abs=1e-12)

    def test_paper_rule_differs_from_convolution(self):
        # The literal sigma_v + sigma_q formula is NOT the overlap
        # integral — documenting the notational slip.
        paper = joint_density_1d(0.0, 0.5, 0.2, 0.5, SigmaRule.PAPER)
        exact = joint_density_1d(0.0, 0.5, 0.2, 0.5, SigmaRule.CONVOLUTION)
        assert paper != pytest.approx(exact, rel=1e-3)

    def test_reduces_to_plain_density_when_query_exact(self):
        # sigma_q -> 0: the joint density becomes N_{mu_v,sigma_v}(mu_q).
        value = joint_density_1d(0.3, 0.4, 0.5, 1e-12, SigmaRule.CONVOLUTION)
        assert value == pytest.approx(stats.norm.pdf(0.5, 0.3, 0.4), rel=1e-6)

    @given(
        mu_v=st.floats(-3, 3),
        sigma_v=st.floats(0.05, 2.0),
        mu_q=st.floats(-3, 3),
        sigma_q=st.floats(0.05, 2.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, mu_v, sigma_v, mu_q, sigma_q):
        for rule in SigmaRule:
            assert log_joint_density_1d(
                mu_v, sigma_v, mu_q, sigma_q, rule
            ) == pytest.approx(
                log_joint_density_1d(mu_q, sigma_q, mu_v, sigma_v, rule)
            )


class TestCombineSigma:
    def test_convolution(self):
        assert combine_sigma(3.0, 4.0, SigmaRule.CONVOLUTION) == pytest.approx(5.0)

    def test_paper(self):
        assert combine_sigma(3.0, 4.0, SigmaRule.PAPER) == pytest.approx(7.0)

    def test_elementwise(self):
        out = combine_sigma(np.array([3.0, 1.0]), np.array([4.0, 1.0]))
        assert out == pytest.approx([5.0, math.sqrt(2.0)])

    @given(
        s1=st.floats(0.01, 10),
        s2=st.floats(0.01, 10),
        delta=st.floats(0.001, 1.0),
    )
    def test_strictly_increasing_in_sigma_v(self, s1, s2, delta):
        # The monotonicity every Gauss-tree interval bound relies on.
        for rule in SigmaRule:
            assert combine_sigma(s1 + delta, s2, rule) > combine_sigma(s1, s2, rule)


class TestMultivariate:
    def test_product_over_dimensions(self):
        v = PFV([0.0, 1.0], [0.5, 0.3])
        q = PFV([0.2, 0.9], [0.1, 0.4])
        expected = sum(
            log_joint_density_1d(v.mu[i], v.sigma[i], q.mu[i], q.sigma[i])
            for i in range(2)
        )
        assert log_joint_density(v, q) == pytest.approx(expected)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            log_joint_density(PFV([0.0], [1.0]), PFV([0.0, 0.0], [1.0, 1.0]))

    def test_linear_space_variant(self):
        v = PFV([0.0], [0.5])
        q = PFV([0.1], [0.5])
        assert joint_density(v, q) == pytest.approx(
            math.exp(log_joint_density(v, q))
        )


class TestBatch:
    def test_matches_scalar_loop(self, rng):
        n, d = 20, 4
        mu = rng.uniform(0, 1, (n, d))
        sigma = rng.uniform(0.05, 0.5, (n, d))
        q = PFV(rng.uniform(0, 1, d), rng.uniform(0.05, 0.5, d))
        batch = log_joint_density_batch(mu, sigma, q)
        for i in range(n):
            v = PFV(mu[i], sigma[i])
            assert batch[i] == pytest.approx(log_joint_density(v, q))

    def test_paper_rule_batch(self, rng):
        mu = rng.uniform(0, 1, (5, 2))
        sigma = rng.uniform(0.1, 0.5, (5, 2))
        q = PFV([0.5, 0.5], [0.2, 0.2])
        batch = log_joint_density_batch(mu, sigma, q, SigmaRule.PAPER)
        for i in range(5):
            v = PFV(mu[i], sigma[i])
            assert batch[i] == pytest.approx(
                log_joint_density(v, q, SigmaRule.PAPER)
            )

    def test_shape_validation(self):
        q = PFV([0.0], [1.0])
        with pytest.raises(ValueError):
            log_joint_density_batch(np.zeros(3), np.ones(3), q)
        with pytest.raises(ValueError):
            log_joint_density_batch(np.zeros((3, 2)), np.ones((3, 2)), q)
