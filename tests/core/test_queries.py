"""Unit tests for query specs and stats records."""

import pytest

from repro.core.pfv import PFV
from repro.core.queries import Match, MLIQuery, QueryStats, ThresholdQuery


class TestSpecs:
    def test_mliq_defaults(self):
        q = MLIQuery(PFV([0.0], [1.0]))
        assert q.k == 1

    def test_mliq_rejects_bad_k(self):
        with pytest.raises(ValueError):
            MLIQuery(PFV([0.0], [1.0]), k=0)

    def test_tiq_threshold_range(self):
        ThresholdQuery(PFV([0.0], [1.0]), 0.0)
        ThresholdQuery(PFV([0.0], [1.0]), 1.0)
        with pytest.raises(ValueError):
            ThresholdQuery(PFV([0.0], [1.0]), 1.5)
        with pytest.raises(ValueError):
            ThresholdQuery(PFV([0.0], [1.0]), -0.1)

    def test_specs_are_frozen(self):
        q = MLIQuery(PFV([0.0], [1.0]), 2)
        with pytest.raises(AttributeError):
            q.k = 3


class TestMatch:
    def test_key_passthrough(self):
        m = Match(PFV([0.0], [1.0], key="obj"), -1.0, 0.5)
        assert m.key == "obj"
        assert "obj" in repr(m)


class TestQueryStats:
    def test_totals(self):
        s = QueryStats(cpu_seconds=1.0, io_seconds=2.0, modeled_cpu_seconds=0.5)
        assert s.total_seconds == pytest.approx(3.0)
        assert s.modeled_total_seconds == pytest.approx(2.5)

    def test_merge_accumulates_everything(self):
        a = QueryStats(1, 2, 3, 4, 5.0, 6.0, 7.0)
        b = QueryStats(10, 20, 30, 40, 50.0, 60.0, 70.0)
        a.merge(b)
        assert (a.pages_accessed, a.page_faults) == (11, 22)
        assert (a.objects_refined, a.nodes_expanded) == (33, 44)
        assert a.cpu_seconds == pytest.approx(55.0)
        assert a.io_seconds == pytest.approx(66.0)
        assert a.modeled_cpu_seconds == pytest.approx(77.0)
