"""Unit tests for probabilistic feature vectors (Definition 1)."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.core.pfv import PFV, ProbabilisticFeatureVector


class TestConstruction:
    def test_basic(self):
        v = PFV([1.0, 2.0], [0.1, 0.2], key="a")
        assert v.dims == 2
        assert v.key == "a"
        assert np.array_equal(v.mu, [1.0, 2.0])
        assert np.array_equal(v.sigma, [0.1, 0.2])

    def test_alias(self):
        assert PFV is ProbabilisticFeatureVector

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            PFV([1.0, 2.0], [0.1])

    def test_empty(self):
        with pytest.raises(ValueError, match="at least one dimension"):
            PFV([], [])

    def test_nonpositive_sigma(self):
        with pytest.raises(ValueError, match="strictly positive"):
            PFV([0.0], [0.0])
        with pytest.raises(ValueError, match="strictly positive"):
            PFV([0.0], [-1.0])

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            PFV([math.nan], [1.0])
        with pytest.raises(ValueError):
            PFV([0.0], [math.inf])

    def test_2d_input_rejected(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            PFV(np.zeros((2, 2)), np.ones((2, 2)))

    def test_arrays_are_read_only(self):
        v = PFV([1.0], [0.5])
        with pytest.raises(ValueError):
            v.mu[0] = 2.0
        with pytest.raises(ValueError):
            v.sigma[0] = 2.0

    def test_does_not_alias_input(self):
        mu = np.array([1.0, 2.0])
        v = PFV(mu, [0.1, 0.1])
        mu[0] = 99.0
        assert v.mu[0] == 1.0


class TestDensity:
    def test_log_density_matches_scipy(self):
        v = PFV([0.0, 1.0], [0.5, 2.0])
        x = np.array([0.3, 0.7])
        expected = stats.norm.logpdf(x, v.mu, v.sigma).sum()
        assert v.log_density(x) == pytest.approx(expected)

    def test_density_exponentiates(self):
        v = PFV([0.0], [1.0])
        assert v.density([0.0]) == pytest.approx(1 / math.sqrt(2 * math.pi))

    def test_density_dimension_check(self):
        v = PFV([0.0, 0.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            v.log_density([0.0])

    def test_distant_density_underflows_to_zero_but_log_is_finite(self):
        v = PFV([0.0] * 27, [0.01] * 27)
        x = np.full(27, 10.0)
        assert v.density(x) == 0.0
        assert math.isfinite(v.log_density(x))


class TestProtocol:
    def test_len_and_iter(self):
        v = PFV([1.0, 2.0], [0.1, 0.2])
        assert len(v) == 2
        assert list(v) == [(1.0, 0.1), (2.0, 0.2)]

    def test_equality_includes_key(self):
        a = PFV([1.0], [0.1], key=1)
        b = PFV([1.0], [0.1], key=1)
        c = PFV([1.0], [0.1], key=2)
        assert a == b
        assert a != c

    def test_equality_checks_values(self):
        assert PFV([1.0], [0.1]) != PFV([1.0], [0.2])
        assert PFV([1.0], [0.1]) != PFV([2.0], [0.1])

    def test_eq_other_type(self):
        assert PFV([1.0], [0.1]).__eq__(42) is NotImplemented

    def test_hash_consistent_with_eq(self):
        a = PFV([1.0], [0.1], key=1)
        b = PFV([1.0], [0.1], key=1)
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_with_key(self):
        v = PFV([1.0], [0.1], key=None)
        w = v.with_key("id7")
        assert w.key == "id7"
        assert np.array_equal(w.mu, v.mu)
        assert v.key is None  # original untouched

    def test_repr_mentions_key_and_dims(self):
        text = repr(PFV([1.0, 2.0], [0.1, 0.2], key="x"))
        assert "x" in text and "d=2" in text
