"""Unit tests for the univariate Gaussian primitives."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st
from scipy import stats

from repro.core import gaussian


class TestPdf:
    def test_standard_normal_peak(self):
        assert gaussian.pdf(0.0, 0.0, 1.0) == pytest.approx(1.0 / math.sqrt(2 * math.pi))

    def test_matches_scipy(self):
        for x, mu, sigma in [(0.3, 0.1, 0.5), (-2.0, 1.0, 2.0), (5.0, 5.0, 0.01)]:
            assert gaussian.pdf(x, mu, sigma) == pytest.approx(
                stats.norm.pdf(x, mu, sigma), rel=1e-12
            )

    def test_symmetry_in_x_and_mu(self):
        # N_{mu,sigma}(x) == N_{x,sigma}(mu) — the symmetry Definition 1
        # exploits to swap observation and true value.
        assert gaussian.pdf(0.7, 0.2, 0.3) == pytest.approx(
            gaussian.pdf(0.2, 0.7, 0.3)
        )

    def test_rejects_nonpositive_sigma(self):
        with pytest.raises(ValueError):
            gaussian.pdf(0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            gaussian.pdf(0.0, 0.0, -1.0)

    @given(
        x=st.floats(-50, 50),
        mu=st.floats(-50, 50),
        sigma=st.floats(0.01, 100),
    )
    def test_log_pdf_consistent_with_pdf(self, x, mu, sigma):
        log_value = gaussian.log_pdf(x, mu, sigma)
        direct = gaussian.pdf(x, mu, sigma)
        if direct > 0.0:
            assert log_value == pytest.approx(math.log(direct), rel=1e-9, abs=1e-9)
        else:
            # pdf underflowed; log form must still be finite.
            assert math.isfinite(log_value)

    def test_log_pdf_far_tail_finite(self):
        # 27-dim products need log densities far beyond float range.
        value = gaussian.log_pdf(1000.0, 0.0, 0.001)
        assert math.isfinite(value)
        assert value < -1e8


class TestCdf:
    def test_median(self):
        assert gaussian.cdf(0.0) == pytest.approx(0.5)

    def test_matches_scipy(self):
        for z in (-3.0, -1.0, 0.0, 0.5, 2.5):
            assert gaussian.cdf(z) == pytest.approx(stats.norm.cdf(z), abs=1e-12)

    def test_location_scale(self):
        assert gaussian.cdf(1.5, mu=1.0, sigma=0.5) == pytest.approx(
            stats.norm.cdf(1.5, 1.0, 0.5)
        )

    @given(z=st.floats(-8, 8))
    def test_poly5_accuracy(self, z):
        # Abramowitz & Stegun 26.2.17 promises |error| < 7.5e-8 — the
        # "degree-5 polynomial" sigmoid approximation of Section 5.3.
        assert gaussian.cdf_poly5(z) == pytest.approx(
            stats.norm.cdf(z), abs=7.5e-8
        )

    def test_poly5_symmetry(self):
        for z in (0.1, 1.0, 2.7):
            assert gaussian.cdf_poly5(-z) == pytest.approx(
                1.0 - gaussian.cdf_poly5(z), abs=1e-12
            )

    def test_poly5_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            gaussian.cdf_poly5(0.0, sigma=0.0)


class TestVectorised:
    def test_log_pdf_array_matches_scalar(self):
        x = np.array([0.1, 0.5, -1.0])
        mu = np.array([0.0, 0.5, 1.0])
        sigma = np.array([1.0, 0.2, 3.0])
        out = gaussian.log_pdf_array(x, mu, sigma)
        for i in range(3):
            assert out[i] == pytest.approx(
                gaussian.log_pdf(x[i], mu[i], sigma[i])
            )

    def test_log_pdf_array_broadcasts(self):
        x = np.zeros((4, 3))
        mu = np.zeros(3)
        sigma = np.ones(3)
        assert gaussian.log_pdf_array(x, mu, sigma).shape == (4, 3)

    def test_log_pdf_array_rejects_zero_sigma(self):
        with pytest.raises(ValueError):
            gaussian.log_pdf_array(np.zeros(2), np.zeros(2), np.array([1.0, 0.0]))

    def test_log_pdf_sum_is_product_density(self):
        x = np.array([0.2, 0.8])
        mu = np.array([0.0, 1.0])
        sigma = np.array([0.5, 0.25])
        expected = stats.norm.logpdf(x, mu, sigma).sum()
        assert gaussian.log_pdf_sum(x, mu, sigma) == pytest.approx(expected)


class TestPeak:
    def test_peak_density(self):
        assert gaussian.peak_density(2.0) == pytest.approx(
            stats.norm.pdf(0.0, 0.0, 2.0)
        )

    def test_log_peak_density(self):
        assert gaussian.log_peak_density(0.1) == pytest.approx(
            math.log(gaussian.peak_density(0.1))
        )

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            gaussian.peak_density(-0.5)
        with pytest.raises(ValueError):
            gaussian.log_peak_density(0.0)


class TestLogSumExp:
    def test_empty(self):
        assert gaussian.logsumexp(np.array([])) == -math.inf

    def test_single(self):
        assert gaussian.logsumexp(np.array([-5.0])) == pytest.approx(-5.0)

    def test_matches_naive_when_safe(self):
        vals = np.array([-1.0, -2.0, -3.0])
        assert gaussian.logsumexp(vals) == pytest.approx(
            math.log(np.exp(vals).sum())
        )

    def test_extreme_values_stable(self):
        vals = np.array([-1500.0, -1501.0])
        out = gaussian.logsumexp(vals)
        assert out == pytest.approx(-1500.0 + math.log(1 + math.exp(-1.0)))

    def test_all_neg_inf(self):
        assert gaussian.logsumexp(np.array([-math.inf, -math.inf])) == -math.inf

    def test_pos_inf_propagates(self):
        # Regression: m + log(sum(exp(values - m))) evaluates inf - inf
        # for the +inf entry and used to return NaN.
        assert gaussian.logsumexp(np.array([math.inf])) == math.inf
        assert gaussian.logsumexp(np.array([0.0, math.inf])) == math.inf
        assert gaussian.logsumexp(np.array([-math.inf, math.inf])) == math.inf
        assert (
            gaussian.logsumexp(np.array([math.inf, math.inf])) == math.inf
        )

    def test_nan_propagates(self):
        assert math.isnan(gaussian.logsumexp(np.array([math.nan])))
        assert math.isnan(gaussian.logsumexp(np.array([0.0, math.nan])))
        assert math.isnan(
            gaussian.logsumexp(np.array([math.inf, math.nan]))
        )
        assert math.isnan(
            gaussian.logsumexp(np.array([-math.inf, math.nan]))
        )

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=20))
    def test_dominates_max(self, values):
        arr = np.array(values)
        out = gaussian.logsumexp(arr)
        assert out >= arr.max() - 1e-12
        assert out <= arr.max() + math.log(len(values)) + 1e-12
