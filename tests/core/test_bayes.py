"""Tests of the Bayes identification posteriors, including the paper's
Figure 1 worked example."""

import math

import numpy as np
import pytest

from repro.core.bayes import (
    identification_posteriors,
    identification_probability,
    log_densities,
    log_total_density,
    posteriors_from_log_densities,
)
from repro.core.database import PFVDatabase
from repro.core.joint import SigmaRule
from repro.core.pfv import PFV


class TestPosteriorsFromLogDensities:
    def test_sums_to_one(self):
        post = posteriors_from_log_densities([-5.0, -6.0, -7.0])
        assert post.sum() == pytest.approx(1.0)

    def test_order_preserved(self):
        post = posteriors_from_log_densities([-5.0, -3.0, -9.0])
        assert post[1] > post[0] > post[2]

    def test_extreme_logs_stable(self):
        post = posteriors_from_log_densities([-2000.0, -2001.0])
        assert post.sum() == pytest.approx(1.0)
        assert post[0] == pytest.approx(1 / (1 + math.exp(-1.0)))

    def test_all_underflowed_gives_uniform(self):
        post = posteriors_from_log_densities([-math.inf] * 4)
        assert post == pytest.approx([0.25] * 4)

    def test_empty(self):
        assert posteriors_from_log_densities([]).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            posteriors_from_log_densities(np.zeros((2, 2)))


class TestDatabasePosteriors:
    def test_posterior_vector(self, small_db, query_pfv):
        post = identification_posteriors(small_db, query_pfv)
        assert post.shape == (len(small_db),)
        assert post.sum() == pytest.approx(1.0)
        assert np.all(post >= 0.0)

    def test_identification_probability_picks_right_object(
        self, small_db, query_pfv
    ):
        post = identification_posteriors(small_db, query_pfv)
        for idx in (0, len(small_db) // 2):
            v = small_db[idx]
            assert identification_probability(
                small_db, query_pfv, v
            ) == pytest.approx(float(post[idx]))

    def test_identification_probability_missing_vector(self, small_db, query_pfv):
        ghost = PFV([9.0, 9.0, 9.0], [1.0, 1.0, 1.0], key="ghost")
        with pytest.raises(KeyError):
            identification_probability(small_db, query_pfv, ghost)

    def test_log_total_density_is_logsumexp(self, small_db, query_pfv):
        dens = log_densities(small_db, query_pfv)
        m = dens.max()
        expected = m + math.log(np.exp(dens - m).sum())
        assert log_total_density(small_db, query_pfv) == pytest.approx(expected)

    def test_empty_database(self, query_pfv):
        db = PFVDatabase()
        assert log_densities(db, query_pfv).size == 0
        assert identification_posteriors(db, query_pfv).size == 0

    def test_rule_override(self, small_db, query_pfv):
        exact = identification_posteriors(
            small_db, query_pfv, SigmaRule.CONVOLUTION
        )
        paper = identification_posteriors(small_db, query_pfv, SigmaRule.PAPER)
        assert not np.allclose(exact, paper)


class TestFigure1Example:
    """The worked example of Section 3.1 / Figure 1.

    Three facial pfv of varying quality and one query; the paper reports
    posteriors of roughly 77% (O3), 13% (O2) and 10% (O1), with O3 winning
    even though the Euclidean nearest neighbour is O1. The figure's exact
    coordinates are not printed, so we reconstructed a scenario with the
    figure's qualitative structure (O1 precise in both features, O2 noisy
    in both, O3 noisy in F1 only, query precise in F1 and noisy in F2)
    whose posteriors land on the paper's numbers.
    """

    @staticmethod
    def scenario():
        # F1 sensitive to rotation, F2 to illumination.
        o1 = PFV([4.42, 1.50], [0.21, 0.21], key="O1")  # good conditions
        o2 = PFV([1.18, 1.46], [1.34, 1.55], key="O2")  # bad rot. + illum.
        o3 = PFV([3.82, 1.20], [1.22, 0.37], key="O3")  # bad rotation only
        q = PFV([3.59, 2.46], [0.23, 1.58])  # good rotation, bad illum.
        return PFVDatabase([o1, o2, o3]), q

    def test_paper_posteriors(self):
        db, q = self.scenario()
        post = dict(zip(db.keys(), identification_posteriors(db, q)))
        assert post["O3"] == pytest.approx(0.77, abs=0.02)
        assert post["O2"] == pytest.approx(0.13, abs=0.02)
        assert post["O1"] == pytest.approx(0.10, abs=0.02)

    def test_euclidean_nearest_neighbour_is_wrong(self):
        db, q = self.scenario()
        import numpy as np

        dists = {v.key: float(np.linalg.norm(v.mu - q.mu)) for v in db}
        assert min(dists, key=dists.get) == "O1"  # NN retrieves O1...
        post = dict(zip(db.keys(), identification_posteriors(db, q)))
        assert max(post, key=post.get) == "O3"  # ...but O3 is the answer.

    def test_tiq_example_from_section_3(self):
        # "A TIQ with Ptheta = 12% would additionally report O2."
        from repro.core.queries import ThresholdQuery
        from repro.core.scan import scan_tiq

        db, q = self.scenario()
        keys = {m.key for m in scan_tiq(db, ThresholdQuery(q, 0.12))}
        assert keys == {"O3", "O2"}

    def test_posteriors_sum_to_one(self):
        db, q = self.scenario()
        assert identification_posteriors(db, q).sum() == pytest.approx(1.0)
