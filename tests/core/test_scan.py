"""Tests of the sequential-scan reference algorithms (Section 4).

These algorithms are the correctness oracle for everything else, so they
are themselves validated against a hand-rolled brute force.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bayes import identification_posteriors
from repro.core.database import PFVDatabase
from repro.core.joint import log_joint_density
from repro.core.queries import MLIQuery, ThresholdQuery
from repro.core.scan import scan_mliq, scan_posteriors, scan_tiq

from tests.conftest import make_random_db, make_random_query


def brute_force_ranking(db, q):
    scored = [
        (log_joint_density(v, q, db.sigma_rule), i) for i, v in enumerate(db)
    ]
    scored.sort(key=lambda t: (-t[0], t[1]))
    return [i for _, i in scored]


class TestMLIQ:
    def test_matches_brute_force(self, small_db, query_pfv):
        ranking = brute_force_ranking(small_db, query_pfv)
        matches = scan_mliq(small_db, MLIQuery(query_pfv, 5))
        assert [m.vector.key for m in matches] == [
            small_db[i].key for i in ranking[:5]
        ]

    def test_probabilities_are_posteriors(self, small_db, query_pfv):
        post = identification_posteriors(small_db, query_pfv)
        matches = scan_mliq(small_db, MLIQuery(query_pfv, 3))
        for m in matches:
            idx = small_db.keys().index(m.key)
            assert m.probability == pytest.approx(float(post[idx]))

    def test_k_larger_than_database(self, small_db, query_pfv):
        matches = scan_mliq(small_db, MLIQuery(query_pfv, len(small_db) + 10))
        assert len(matches) == len(small_db)

    def test_ordered_by_descending_probability(self, small_db, query_pfv):
        matches = scan_mliq(small_db, MLIQuery(query_pfv, 10))
        probs = [m.probability for m in matches]
        assert probs == sorted(probs, reverse=True)

    def test_empty_database(self, query_pfv):
        assert scan_mliq(PFVDatabase(), MLIQuery(query_pfv, 3)) == []

    @given(
        n=st.integers(1, 50),
        k=st.integers(1, 60),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=25, deadline=None)
    def test_result_size(self, n, k, seed):
        db = make_random_db(n=n, d=2, seed=seed)
        q = make_random_query(d=2, seed=seed + 1)
        assert len(scan_mliq(db, MLIQuery(q, k))) == min(n, k)


class TestTIQ:
    def test_matches_posterior_filter(self, small_db, query_pfv):
        post = identification_posteriors(small_db, query_pfv)
        expected = {
            small_db[i].key for i in range(len(small_db)) if post[i] >= 0.05
        }
        matches = scan_tiq(small_db, ThresholdQuery(query_pfv, 0.05))
        assert {m.key for m in matches} == expected

    def test_threshold_zero_returns_everything(self, small_db, query_pfv):
        matches = scan_tiq(small_db, ThresholdQuery(query_pfv, 0.0))
        assert len(matches) == len(small_db)

    def test_threshold_one_rarely_matches(self, small_db, query_pfv):
        matches = scan_tiq(small_db, ThresholdQuery(query_pfv, 1.0))
        assert len(matches) <= 1

    def test_single_object_database_has_posterior_one(self):
        from repro.core.pfv import PFV

        db = PFVDatabase([PFV([0.0], [1.0], key=0)])
        q = make_random_query(d=1, seed=3)
        matches = scan_tiq(db, ThresholdQuery(q, 1.0))
        assert len(matches) == 1
        assert matches[0].probability == pytest.approx(1.0)

    def test_empty_database(self, query_pfv):
        assert scan_tiq(PFVDatabase(), ThresholdQuery(query_pfv, 0.5)) == []

    @given(seed=st.integers(0, 500), p=st.floats(0.01, 0.99))
    @settings(max_examples=25, deadline=None)
    def test_every_returned_probability_reaches_threshold(self, seed, p):
        db = make_random_db(n=30, d=2, seed=seed)
        q = make_random_query(d=2, seed=seed + 7)
        for m in scan_tiq(db, ThresholdQuery(q, p)):
            assert m.probability >= p


class TestScanPosteriors:
    def test_insertion_order(self, small_db, query_pfv):
        log_dens, post = scan_posteriors(small_db, query_pfv)
        assert log_dens.shape == post.shape == (len(small_db),)
        assert np.argmax(log_dens) == np.argmax(post)
