"""End-to-end integration tests across the whole stack.

One workload, every access method: the in-memory scan (Section 4), the
paged sequential scan, the insertion-built Gauss-tree, the bulk-loaded
Gauss-tree — all must return identical answers; the X-tree filter must be
consistent with the exact ranking on its candidates. Plus a CLI smoke
test and a miniature end-to-end effectiveness check.
"""

import numpy as np
import pytest

from repro.baselines.seqscan import SequentialScanIndex
from repro.baselines.xtree_pfv import XTreePFVIndex
from repro.core.queries import MLIQuery, ThresholdQuery
from repro.core.scan import scan_mliq, scan_tiq
from repro.data.histograms import color_histogram_dataset
from repro.data.workload import identification_workload
from repro.eval.figures import make_page_store
from repro.gausstree.bulkload import bulk_load
from repro.gausstree.tree import GaussTree


@pytest.fixture(scope="module")
def stack():
    db = color_histogram_dataset(n=800)
    workload = identification_workload(db, 12, seed=5)
    inserted = GaussTree(dims=db.dims, sigma_rule=db.sigma_rule)
    inserted.extend(db.vectors)
    bulked = bulk_load(db.vectors, sigma_rule=db.sigma_rule)
    paged = SequentialScanIndex(db, page_store=make_page_store(db.dims))
    xtree = XTreePFVIndex(db, page_store=make_page_store(db.dims))
    return db, workload, inserted, bulked, paged, xtree


class TestAllMethodsAgree:
    def test_mliq_identical_across_exact_methods(self, stack):
        db, workload, inserted, bulked, paged, _ = stack
        for item in workload:
            query = MLIQuery(item.q, 3)
            reference = [m.key for m in scan_mliq(db, query)]
            assert [m.key for m in paged.mliq(query)[0]] == reference
            assert [m.key for m in inserted.mliq(query)[0]] == reference
            assert [m.key for m in bulked.mliq(query)[0]] == reference

    def test_tiq_identical_across_exact_methods(self, stack):
        db, workload, inserted, bulked, paged, _ = stack
        for item in workload[:6]:
            for p_theta in (0.2, 0.8):
                query = ThresholdQuery(item.q, p_theta)
                reference = {m.key for m in scan_tiq(db, query)}
                assert {m.key for m in paged.tiq(query)[0]} == reference
                assert {m.key for m in inserted.tiq(query)[0]} == reference
                assert {m.key for m in bulked.tiq(query)[0]} == reference

    def test_posteriors_consistent(self, stack):
        db, workload, inserted, bulked, paged, _ = stack
        item = workload[0]
        query = MLIQuery(item.q, 3)
        reference = scan_mliq(db, query)
        for method in (paged, inserted, bulked):
            got, _ = method.mliq(query)
            for a, b in zip(got, reference):
                assert a.probability == pytest.approx(b.probability, abs=1e-6)

    def test_xtree_consistent_on_its_candidates(self, stack):
        db, workload, _, _, _, xtree = stack
        full_ranking = {
            id(item): [m.key for m in scan_mliq(db, MLIQuery(item.q, len(db)))]
            for item in workload[:5]
        }
        for item in workload[:5]:
            got, _ = xtree.mliq(MLIQuery(item.q, 5))
            ranking = full_ranking[id(item)]
            positions = [ranking.index(m.key) for m in got]
            assert positions == sorted(positions)

    def test_index_efficiency_on_this_workload(self, stack):
        db, workload, _, bulked, paged, _ = stack
        tree_pages = scan_pages = 0
        for item in workload:
            _, ts = bulked.mliq(MLIQuery(item.q, 1), tolerance=float("inf"))
            _, ss = paged.mliq(MLIQuery(item.q, 1))
            tree_pages += ts.pages_accessed
            scan_pages += ss.pages_accessed
        assert tree_pages < scan_pages / 2

    def test_effectiveness_end_to_end(self, stack):
        db, workload, _, bulked, _, _ = stack
        hits = 0
        for item in workload:
            got, _ = bulked.mliq(MLIQuery(item.q, 1))
            hits += got[0].key == item.true_key
        assert hits >= len(workload) - 1  # near-perfect identification


class TestCLI:
    def test_example_command(self, capsys):
        from repro.cli import main

        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "O3" in out and "77" in out

    def test_figure6_command(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "figure6",
                    "--dataset",
                    "2",
                    "--scale",
                    "0.02",
                    "--queries",
                    "10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "NN prec%" in out and "x9" in out

    def test_unknown_dataset_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["figure6", "--dataset", "3"])


class TestSigmaRuleConsistency:
    def test_paper_rule_end_to_end(self):
        from repro.core.joint import SigmaRule

        db = color_histogram_dataset(n=300, sigma_rule=SigmaRule.PAPER)
        workload = identification_workload(db, 5, seed=9)
        tree = bulk_load(db.vectors, sigma_rule=SigmaRule.PAPER)
        for item in workload:
            reference = [m.key for m in scan_mliq(db, MLIQuery(item.q, 3))]
            got, _ = tree.mliq(MLIQuery(item.q, 3))
            assert [m.key for m in got] == reference
