"""Setuptools shim for environments without PEP 660 editable-build support."""
from setuptools import setup

setup()
