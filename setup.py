"""Packaging for the Gauss-tree reproduction.

Kept as a plain ``setup.py`` (no PEP 660 build backend required) so the
baked-in toolchain of CI containers can ``pip install -e .`` or plain
``pip install .`` without network access to fetch a backend.
"""

import os
import re

from setuptools import find_packages, setup

_HERE = os.path.dirname(os.path.abspath(__file__))


def _readme() -> str:
    path = os.path.join(_HERE, "README.md")
    if os.path.exists(path):
        with open(path, encoding="utf-8") as f:
            return f.read()
    return ""


def _version() -> str:
    # Single-sourced from the package so pip metadata can never drift
    # from repro.__version__.
    with open(os.path.join(_HERE, "src", "repro", "__init__.py")) as f:
        match = re.search(r'^__version__ = "([^"]+)"', f.read(), re.M)
    if match is None:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="gausstree-repro",
    version=_version(),
    description=(
        "Reproduction of 'The Gauss-Tree: Efficient Object Identification "
        "in Databases of Probabilistic Feature Vectors' (ICDE 2006) with "
        "disk persistence and batch query APIs"
    ),
    long_description=_readme(),
    long_description_content_type="text/markdown",
    author="gausstree-repro contributors",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        # float64 broadcasting kernels and the multi-query (m, n, d)
        # refinement path need the NumPy 1.24+ dtype/broadcast behavior.
        "numpy>=1.24",
        # scipy.special.ndtri (quantile approximations) and the quadrature
        # oracles the test suite verifies closed forms against.
        "scipy>=1.10",
    ],
    extras_require={
        "test": ["pytest>=7.0", "hypothesis>=6.80", "pytest-benchmark>=4.0"],
    },
    entry_points={
        "console_scripts": ["repro=repro.cli:main"],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Database :: Database Engines/Servers",
        "Topic :: Scientific/Engineering",
    ],
)
